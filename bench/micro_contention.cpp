// Lock-contention microbenchmark: hot-hit throughput of the sharded Data
// Store and Page Space Manager against the single-lock (shards = 1)
// configuration, swept over worker-thread counts 1 -> 128 (DESIGN.md §10).
//
//   micro_contention [--threads 1,2,4,8,16,32,64,128] [--shards 16]
//                    [--ops 200000] [--trials 3] [--pages 256] [--blobs 256]
//                    [--json-dir DIR] [--smoke]
//
// Every data point performs a fixed total number of hot-hit operations
// (`--ops`, split evenly over the threads, so each point costs the same
// work) and reports the best of `--trials` runs: PS = read-through fetch()
// of already-resident pages, DS = noteReuse() recency touches of resident
// blobs. Both are pure lock-protected fast paths — no I/O, no eviction —
// so the sweep isolates lock acquisition cost. The second table reports
// the contended-acquisition counts from mqs::lockstats (the same counters
// the server emits as LOCK_WAIT_* trace events).
//
// --smoke runs only the 8-thread PS point (sharded vs single lock) and
// exits nonzero if sharding falls behind the single lock beyond noise;
// the CI matrices run it as a guardrail test.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/lock_stats.hpp"
#include "datastore/data_store.hpp"
#include "index/chunk_layout.hpp"
#include "pagespace/page_space_manager.hpp"
#include "storage/synthetic_source.hpp"
#include "vm/vm_predicate.hpp"
#include "vm/vm_semantics.hpp"

using namespace mqs;

namespace {

struct RunResult {
  double opsPerSec = 0.0;
  std::uint64_t contended = 0;  ///< blocked lock acquisitions during the run
};

std::uint64_t contendedSum(lockorder::Rank shardRank, lockorder::Rank bigRank) {
  return lockstats::countsFor(shardRank).contended +
         lockstats::countsFor(bigRank).contended;
}

/// Run `totalOps` calls of op(threadIndex, i) split over `threads` threads,
/// all released together off a spin barrier; returns hot-op throughput and
/// the contended-acquisition delta on the subsystem's two lock ranks.
template <typename Op>
RunResult hammer(int threads, std::uint64_t totalOps,
                 lockorder::Rank shardRank, lockorder::Rank bigRank, Op op) {
  const std::uint64_t per =
      std::max<std::uint64_t>(1, totalOps / static_cast<std::uint64_t>(threads));
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  const std::uint64_t before = contendedSum(shardRank, bigRank);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1, std::memory_order_relaxed);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::uint64_t i = 0; i < per; ++i) op(t, i);
    });
  }
  while (ready.load(std::memory_order_relaxed) < threads) {
    std::this_thread::yield();
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  RunResult r;
  r.opsPerSec = static_cast<double>(per) * threads / wall;
  r.contended = contendedSum(shardRank, bigRank) - before;
  return r;
}

/// Cheap per-thread mixer so every thread walks its own key sequence.
std::uint64_t mix(std::uint64_t t, std::uint64_t i) {
  std::uint64_t x = (t + 1) * 0x9e3779b97f4a7c15ULL + i * 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

/// Page Space hot hits: fetch() of pages that are all resident (capacity
/// far above the working set, prewarmed before the clock starts).
RunResult runPs(int threads, int shards, std::uint64_t totalOps, int pages,
                int trials) {
  const index::ChunkLayout layout(64 * pages, 64, 64);
  const storage::SyntheticSlideSource slide(layout, /*seed=*/7);
  RunResult best;
  for (int trial = 0; trial < trials; ++trial) {
    pagespace::PageSpaceManager ps(1ULL << 30, /*ioThreads=*/0,
                                   pagespace::RetryPolicy{}, shards);
    ps.attach(0, &slide);
    for (std::uint64_t p = 0; p < layout.chunkCount(); ++p) {
      (void)ps.fetch({0, p});
    }
    std::atomic<std::uint64_t> sink{0};
    const std::uint64_t nPages = layout.chunkCount();
    RunResult r = hammer(
        threads, totalOps, lockorder::Rank::kPageSpaceShard,
        lockorder::Rank::kPageSpace, [&](std::uint64_t t, std::uint64_t i) {
          const storage::PageKey key{0, mix(t, i) % nPages};
          sink.fetch_add(ps.fetch(key)->size(), std::memory_order_relaxed);
        });
    if (r.opsPerSec > best.opsPerSec) best = r;
  }
  return best;
}

/// Data Store hot hits: noteReuse() recency touches of resident blobs
/// (ids hash across shards; no lookup scan, no eviction).
RunResult runDs(int threads, int shards, std::uint64_t totalOps, int blobs,
                int trials) {
  vm::VMSemantics sem;
  const storage::DatasetId dataset =
      sem.addDataset(index::ChunkLayout(8192, 8192, 64));
  RunResult best;
  for (int trial = 0; trial < trials; ++trial) {
    datastore::DataStore ds(1ULL << 30, &sem, datastore::EvictionPolicy::Lru,
                            shards);
    std::vector<datastore::BlobId> ids;
    for (int b = 0; b < blobs; ++b) {
      auto pred = std::make_unique<vm::VMPredicate>(
          dataset, Rect::ofSize((b % 64) * 128, (b / 64) * 128, 64, 64),
          /*zoom=*/2, vm::VMOp::Subsample);
      const std::uint64_t bytes = vm::asVM(*pred).outBytes();
      const auto id = ds.insert(std::move(pred), {}, bytes);
      if (id.has_value()) ids.push_back(*id);
    }
    RunResult r = hammer(
        threads, totalOps, lockorder::Rank::kDataStoreShard,
        lockorder::Rank::kDataStore, [&](std::uint64_t t, std::uint64_t i) {
          ds.noteReuse(ids[mix(t, i) % ids.size()], 1.0);
        });
    if (r.opsPerSec > best.opsPerSec) best = r;
  }
  return best;
}

double mops(const RunResult& r) { return r.opsPerSec / 1e6; }

}  // namespace

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "contention");
  const Options& opts = ctx.options();
  const int shards = static_cast<int>(opts.getInt("shards", 16));
  const std::uint64_t ops =
      static_cast<std::uint64_t>(opts.getInt("ops", 200000));
  const int trials = static_cast<int>(opts.getInt("trials", 3));
  const int pages = static_cast<int>(opts.getInt("pages", 256));
  const int blobs = static_cast<int>(opts.getInt("blobs", 256));

  if (opts.getBool("smoke", false)) {
    // Guardrail, not a speedup assertion: on a loaded or single-core CI
    // box the sharded path must simply not be slower than the single lock
    // beyond noise (best of `trials`, 15% margin).
    const int threads = static_cast<int>(opts.getInt("smoke-threads", 8));
    const RunResult single = runPs(threads, 1, ops, pages, trials);
    const RunResult sharded = runPs(threads, shards, ops, pages, trials);
    const double ratio = sharded.opsPerSec / single.opsPerSec;
    std::cout << "# smoke: ps hot-hit @" << threads << " threads: single "
              << formatDouble(mops(single), 3) << " Mops/s (contended "
              << single.contended << "), sharded x" << shards << " "
              << formatDouble(mops(sharded), 3) << " Mops/s (contended "
              << sharded.contended << "), ratio "
              << formatDouble(ratio, 3) << "\n";
    if (ratio < 0.85) {
      std::cout << "# FAIL: sharded path slower than the single lock\n";
      return 1;
    }
    return 0;
  }

  ctx.printHeader();
  // The scaling gap is a function of real hardware parallelism: on a
  // single-core host every thread count serializes and both configs
  // converge, so record the host width next to the sweep.
  std::cout << "# host hardware threads: "
            << std::thread::hardware_concurrency() << "\n\n";
  const auto threadList =
      opts.getIntList("threads", {1, 2, 4, 8, 16, 32, 64, 128});

  Table tput("hot_hit_mops");
  tput.setColumns({"threads", "ps_single", "ps_sharded", "ps_speedup",
                   "ds_single", "ds_sharded", "ds_speedup"});
  Table cont("contended_acquisitions");
  cont.setColumns({"threads", "ps_single", "ps_sharded", "ds_single",
                   "ds_sharded"});
  for (std::int64_t t : threadList) {
    const int threads = static_cast<int>(t);
    const RunResult ps1 = runPs(threads, 1, ops, pages, trials);
    const RunResult psN = runPs(threads, shards, ops, pages, trials);
    const RunResult ds1 = runDs(threads, 1, ops, blobs, trials);
    const RunResult dsN = runDs(threads, shards, ops, blobs, trials);
    tput.addRow(std::to_string(threads),
                {mops(ps1), mops(psN), psN.opsPerSec / ps1.opsPerSec,
                 mops(ds1), mops(dsN), dsN.opsPerSec / ds1.opsPerSec});
    cont.addRow(std::to_string(threads),
                {static_cast<double>(ps1.contended),
                 static_cast<double>(psN.contended),
                 static_cast<double>(ds1.contended),
                 static_cast<double>(dsN.contended)},
                /*precision=*/0);
  }
  ctx.emit(tput);
  ctx.emit(cont);
  return 0;
}
