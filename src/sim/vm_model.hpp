// Virtual Microscope cost adapter for the DES: chunk I/O from the dataset
// layouts, CPU per clipped input byte with per-operator constants
// calibrated to the paper's measured CPU:I/O ratios (§5).
#pragma once

#include "sim/app_model.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs::sim {

class VMModel final : public AppModel {
 public:
  VMModel(const vm::VMSemantics* semantics, double cpuPerByteSubsample,
          double cpuPerByteAverage);

  [[nodiscard]] std::vector<ChunkDemand> demandFor(
      const query::Predicate& part) const override;

 private:
  const vm::VMSemantics* sem_;
  double cpuPerByteSubsample_;
  double cpuPerByteAverage_;
};

}  // namespace mqs::sim
