// Index Manager: regular chunking of a 2-D dataset.
//
// "each slide is regularly partitioned into data chunks, each of which is a
//  rectangular subregion of the 2D image" — §3. Chunks are stored one per
// page; chunk id == page id, row-major. The layout answers the index-lookup
// step of query planning: which chunks intersect a query region, and how
// many input bytes they hold (used as qinputsize by the SJF policy).
#pragma once

#include <cstdint>
#include <vector>

#include "common/geometry.hpp"

namespace mqs::index {

/// Reference to one chunk returned by an index lookup.
struct ChunkRef {
  std::uint64_t id = 0;  ///< page id within the dataset
  Rect rect;             ///< region covered, clipped to the image extent

  friend bool operator==(const ChunkRef&, const ChunkRef&) = default;
};

class ChunkLayout {
 public:
  /// A width x height image of bytesPerPixel-byte pixels, cut into
  /// chunkSide x chunkSide tiles (edge tiles clipped).
  ChunkLayout(std::int64_t width, std::int64_t height, std::int64_t chunkSide,
              int bytesPerPixel = 3);

  [[nodiscard]] std::int64_t width() const { return width_; }
  [[nodiscard]] std::int64_t height() const { return height_; }
  [[nodiscard]] std::int64_t chunkSide() const { return chunkSide_; }
  [[nodiscard]] int bytesPerPixel() const { return bytesPerPixel_; }
  [[nodiscard]] Rect extent() const { return Rect{0, 0, width_, height_}; }

  [[nodiscard]] std::int64_t chunksPerRow() const { return chunksPerRow_; }
  [[nodiscard]] std::int64_t chunksPerCol() const { return chunksPerCol_; }
  [[nodiscard]] std::uint64_t chunkCount() const {
    return static_cast<std::uint64_t>(chunksPerRow_ * chunksPerCol_);
  }

  /// Full (unclipped) page capacity in bytes: chunkSide^2 * bytesPerPixel.
  [[nodiscard]] std::size_t fullChunkBytes() const {
    return static_cast<std::size_t>(chunkSide_ * chunkSide_ * bytesPerPixel_);
  }

  /// Region covered by chunk `id`, clipped to the image.
  [[nodiscard]] Rect chunkRect(std::uint64_t id) const;

  /// Bytes of pixel data held by chunk `id` (edge chunks are short).
  [[nodiscard]] std::size_t chunkBytes(std::uint64_t id) const;

  /// Chunk containing pixel (x, y).
  [[nodiscard]] std::uint64_t chunkAt(std::int64_t x, std::int64_t y) const;

  /// All chunks intersecting `region` (clipped to the image extent), in
  /// row-major order. Empty if the region misses the image.
  [[nodiscard]] std::vector<ChunkRef> chunksIntersecting(const Rect& region) const;

  /// Total bytes of the chunks intersecting `region` — the paper's
  /// qinputsize estimate ("the total size of the data chunks that intersect
  /// the query window").
  [[nodiscard]] std::uint64_t inputBytes(const Rect& region) const;

 private:
  std::int64_t width_;
  std::int64_t height_;
  std::int64_t chunkSide_;
  int bytesPerPixel_;
  std::int64_t chunksPerRow_;
  std::int64_t chunksPerCol_;
};

}  // namespace mqs::index
