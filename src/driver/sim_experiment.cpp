#include "driver/sim_experiment.hpp"

#include <cmath>
#include <memory>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace mqs::driver {

namespace {

sim::Task<void> interactiveClient(sim::Simulator& simr,
                                  sim::SimServer& server,
                                  const ClientWorkload* wl,
                                  double thinkMean, std::uint64_t seed) {
  Rng rng(seed);
  for (const vm::VMPredicate& q : wl->queries) {
    co_await server.executeAndWait(std::make_unique<vm::VMPredicate>(q),
                                   wl->client);
    if (thinkMean > 0.0) {
      // Exponential think time, inverse-CDF sampled.
      const double u = std::max(1e-12, 1.0 - rng.uniform01());
      co_await simr.delay(-thinkMean * std::log(u));
    }
  }
}

SimRunResult gather(const sim::Simulator& simr, const sim::SimServer& server) {
  SimRunResult r;
  r.records = server.collector().records();
  r.summary = metrics::summarize(r.records);
  r.io = server.ioStats();
  r.dsStats = server.dataStore().stats();
  if (const datastore::SpillTier* spill = server.spillTier()) {
    r.spillStats = spill->stats();
  }
  r.psStats = server.pageCache().stats();
  r.scanStats = server.scanRegistry().stats();
  r.schedStats = server.scheduler().stats();
  r.simulatedSeconds = simr.now();
  r.events = simr.processedEvents();
  if (trace::Tracer* tracer = server.tracer()) {
    r.traceEvents = tracer->drain();
  }
  return r;
}

}  // namespace

SimRunResult SimExperiment::runInteractive(const WorkloadConfig& workload,
                                           const sim::SimConfig& serverCfg) {
  vm::VMSemantics semantics;
  const std::vector<ClientWorkload> workloads =
      WorkloadGenerator::generate(workload, semantics);

  sim::Simulator simr;
  sim::SimServer server(simr, &semantics, serverCfg);
  Rng thinkSeeds(workload.seed ^ 0x7468696e6bULL);
  for (const ClientWorkload& wl : workloads) {
    simr.spawn(interactiveClient(simr, server, &wl,
                                 workload.thinkTimeMeanSec,
                                 thinkSeeds.next()));
  }
  simr.run();
  return gather(simr, server);
}

SimRunResult SimExperiment::runOpenLoop(const WorkloadConfig& workload,
                                        const sim::SimConfig& serverCfg,
                                        double arrivalsPerSecond) {
  MQS_CHECK(arrivalsPerSecond > 0.0);
  vm::VMSemantics semantics;
  const std::vector<ClientWorkload> workloads =
      WorkloadGenerator::generate(workload, semantics);

  sim::Simulator simr;
  sim::SimServer server(simr, &semantics, serverCfg);

  // Deterministic Poisson arrivals over the interleaved stream.
  struct Arrival {
    const vm::VMPredicate* query;
    int client;
  };
  std::vector<Arrival> arrivals;
  std::size_t maxLen = 0;
  for (const auto& wl : workloads) {
    maxLen = std::max(maxLen, wl.queries.size());
  }
  for (std::size_t i = 0; i < maxLen; ++i) {
    for (const ClientWorkload& wl : workloads) {
      if (i < wl.queries.size()) {
        arrivals.push_back(Arrival{&wl.queries[i], wl.client});
      }
    }
  }
  Rng rng(workload.seed ^ 0x6f70656eULL);
  double at = 0.0;
  for (const Arrival& a : arrivals) {
    const double u = std::max(1e-12, 1.0 - rng.uniform01());
    at += -std::log(u) / arrivalsPerSecond;
    simr.schedule(at, [&server, a] {
      server.submit(std::make_unique<vm::VMPredicate>(*a.query), a.client);
    });
  }
  simr.run();
  return gather(simr, server);
}

SimRunResult SimExperiment::runBatch(const WorkloadConfig& workload,
                                     const sim::SimConfig& serverCfg) {
  vm::VMSemantics semantics;
  const std::vector<ClientWorkload> workloads =
      WorkloadGenerator::generate(workload, semantics);

  sim::Simulator simr;
  sim::SimServer server(simr, &semantics, serverCfg);
  // Round-robin interleaving preserves per-client arrival order while
  // presenting the batch the way concurrent clients would.
  std::size_t maxLen = 0;
  for (const auto& wl : workloads) {
    maxLen = std::max(maxLen, wl.queries.size());
  }
  for (std::size_t i = 0; i < maxLen; ++i) {
    for (const ClientWorkload& wl : workloads) {
      if (i < wl.queries.size()) {
        server.submit(std::make_unique<vm::VMPredicate>(wl.queries[i]),
                      wl.client);
      }
    }
  }
  simr.run();
  return gather(simr, server);
}

}  // namespace mqs::driver
