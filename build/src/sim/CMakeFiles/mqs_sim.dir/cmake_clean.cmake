file(REMOVE_RECURSE
  "CMakeFiles/mqs_sim.dir/disk_server.cpp.o"
  "CMakeFiles/mqs_sim.dir/disk_server.cpp.o.d"
  "CMakeFiles/mqs_sim.dir/primitives.cpp.o"
  "CMakeFiles/mqs_sim.dir/primitives.cpp.o.d"
  "CMakeFiles/mqs_sim.dir/sim_server.cpp.o"
  "CMakeFiles/mqs_sim.dir/sim_server.cpp.o.d"
  "CMakeFiles/mqs_sim.dir/simulator.cpp.o"
  "CMakeFiles/mqs_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/mqs_sim.dir/vm_model.cpp.o"
  "CMakeFiles/mqs_sim.dir/vm_model.cpp.o.d"
  "CMakeFiles/mqs_sim.dir/vol_model.cpp.o"
  "CMakeFiles/mqs_sim.dir/vol_model.cpp.o.d"
  "libmqs_sim.a"
  "libmqs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
