// Event-queue core of the discrete-event engine.
//
// Time is virtual (seconds as double); events at equal times run in
// scheduling order (a monotone sequence number breaks ties), which makes
// every simulation fully deterministic.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/task.hpp"

namespace mqs::sim {

using Time = double;

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now).
  void schedule(Time at, std::function<void()> fn);
  void scheduleAfter(Time delay, std::function<void()> fn) {
    schedule(now_ + delay, std::move(fn));
  }

  /// Start a root coroutine; the simulator owns its frame until it
  /// finishes. The task begins running at the current time, immediately.
  void spawn(Task<void> task);

  /// Awaitable: resume after `seconds` of virtual time.
  struct DelayAwaiter {
    Simulator* sim;
    Time seconds;
    bool await_ready() const noexcept { return seconds <= 0.0; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->scheduleAfter(seconds, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] DelayAwaiter delay(Time seconds) {
    return DelayAwaiter{this, seconds};
  }

  /// Run until the event queue drains. Throws if any spawned root task
  /// terminated with an exception.
  void run();

  /// Process a single event; false when the queue is empty.
  bool step();

  [[nodiscard]] std::uint64_t processedEvents() const { return processed_; }

 private:
  void reapFinishedRoots();

  struct Event {
    Time at = 0.0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };
  struct EventCmp {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;  // min-heap on time
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventCmp> queue_;
  std::vector<Task<void>::Handle> roots_;
};

}  // namespace mqs::sim
