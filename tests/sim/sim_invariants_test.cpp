// System-level invariants of the discrete-event server, swept across every
// ranking policy, both VM operators, and a range of thread-pool sizes
// (parameterized gtest). These are the conservation laws any correct
// middleware run must satisfy regardless of schedule.
#include <gtest/gtest.h>

#include <tuple>

#include "driver/sim_experiment.hpp"
#include "sim/vol_model.hpp"
#include "vol/vol_semantics.hpp"

namespace mqs::sim {
namespace {

using Param = std::tuple<std::string, vm::VMOp, int>;  // policy, op, threads

class SimInvariantsTest : public ::testing::TestWithParam<Param> {};

driver::WorkloadConfig workloadFor(vm::VMOp op) {
  driver::WorkloadConfig cfg;
  cfg.datasets = {driver::DatasetSpec{4096, 4096, 146, 5},
                  driver::DatasetSpec{4096, 4096, 146, 6}};
  cfg.clientsPerDataset = {4, 2};
  cfg.queriesPerClient = 5;
  cfg.outputSide = 256;
  cfg.zoomLevels = {2, 4, 8};
  cfg.zoomWeights = {2, 2, 1};
  cfg.alignGrid = 16;
  cfg.op = op;
  cfg.seed = 777;
  return cfg;
}

TEST_P(SimInvariantsTest, ConservationLawsHold) {
  const auto& [policy, op, threads] = GetParam();
  SimConfig server;
  server.policy = policy;
  server.threads = threads;
  server.cpus = 8;
  server.dsBytes = 8ULL << 20;
  server.psBytes = 4ULL << 20;

  const auto result =
      driver::SimExperiment::runInteractive(workloadFor(op), server);

  ASSERT_EQ(result.summary.queries, 30u);
  EXPECT_GT(result.summary.makespan, 0.0);

  std::uint64_t diskTotal = 0;
  for (const auto& r : result.records) {
    // Time ordering.
    EXPECT_GE(r.startTime, r.arrivalTime);
    EXPECT_GT(r.finishTime, r.startTime);
    EXPECT_GE(r.blockedTime, 0.0);
    EXPECT_LE(r.blockedTime, r.execTime() + 1e-9);
    // A query reads at most its index-lookup input estimate — with slack
    // for chunks straddling remainder-part boundaries, which can be
    // re-read if the page space thrashes between parts.
    EXPECT_LE(r.bytesFromDisk, 2 * r.inputBytes);
    EXPECT_LE(r.bytesReused, r.outputBytes);
    EXPECT_GE(r.overlapUsed, 0.0);
    EXPECT_LE(r.overlapUsed, 1.0);
    // Full reuse <=> no disk reads for this query.
    if (r.overlapUsed >= 1.0) {
      EXPECT_EQ(r.bytesFromDisk, 0u);
    }
    diskTotal += r.bytesFromDisk;
  }
  // Per-query accounting must agree with the device-level accounting.
  EXPECT_EQ(diskTotal, result.io.bytesRead);
  // The device can never be busier than wall-clock allows.
  EXPECT_LE(result.io.diskBusyIntegral, result.summary.makespan * 1 + 1e-6);
  // Page-space bookkeeping is self-consistent.
  EXPECT_EQ(result.psStats.hits + result.psStats.misses,
            result.io.pageHits + result.io.pageReads + result.io.pageMerges);
  // The scheduler processed exactly the workload.
  EXPECT_EQ(result.schedStats.submitted, 30u);
  EXPECT_EQ(result.schedStats.dequeued, 30u);
  EXPECT_EQ(result.schedStats.completedCount, 30u);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyOpThreads, SimInvariantsTest,
    ::testing::Combine(
        ::testing::Values("FIFO", "MUF", "FF", "CF", "CNBF", "SJF",
                          "COMBINED", "ADAPTIVE"),
        ::testing::Values(vm::VMOp::Subsample, vm::VMOp::Average),
        ::testing::Values(1, 3, 8)),
    [](const ::testing::TestParamInfo<Param>& paramInfo) {
      return std::get<0>(paramInfo.param) +
             std::string(std::get<1>(paramInfo.param) == vm::VMOp::Subsample
                             ? "_sub_"
                             : "_avg_") +
             std::to_string(std::get<2>(paramInfo.param)) + "t";
    });

/// The generic engine runs the volume application too (via VolModel).
TEST(SimVolume, VolumeWorkloadOnTheDes) {
  vol::VolSemantics sem;
  const auto ds = sem.addDataset(vol::VolumeLayout(512, 512, 256, 40));
  VolModel model(&sem);

  Simulator simr;
  SimConfig cfg;
  cfg.threads = 2;
  cfg.dsBytes = 8ULL << 20;
  cfg.psBytes = 4ULL << 20;
  SimServer server(simr, &sem, &model, cfg);

  // Overview then slices — mirrors examples/volume_explorer.
  server.submit(std::make_unique<vol::VolPredicate>(
                    ds, Box3::ofSize(0, 0, 0, 512, 512, 256), 4,
                    vol::VolOp::Subvolume),
                0);
  simr.run();
  for (int i = 0; i < 4; ++i) {
    server.submit(std::make_unique<vol::VolPredicate>(
                      vol::VolPredicate::slice(
                          ds, Rect::ofSize(0, 0, 512, 512), i * 64, 4)),
                  1);
  }
  simr.run();

  const auto records = server.collector().records();
  ASSERT_EQ(records.size(), 5u);
  EXPECT_GT(records[0].bytesFromDisk, 0u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_DOUBLE_EQ(records[i].overlapUsed, 1.0) << i;
    EXPECT_EQ(records[i].bytesFromDisk, 0u) << i;
    EXPECT_LT(records[i].execTime(), records[0].execTime()) << i;
  }
}

TEST(SimVolume, DeterministicVolumeRuns) {
  auto runOnce = [] {
    vol::VolSemantics sem;
    const auto ds = sem.addDataset(vol::VolumeLayout(256, 256, 128, 40));
    VolModel model(&sem);
    Simulator simr;
    SimConfig cfg;
    cfg.threads = 3;
    SimServer server(simr, &sem, &model, cfg);
    for (int i = 0; i < 6; ++i) {
      server.submit(std::make_unique<vol::VolPredicate>(
                        ds,
                        Box3::ofSize((i % 2) * 128, 0, (i % 3) * 32, 128, 128,
                                     32),
                        2, vol::VolOp::Subvolume),
                    i);
    }
    simr.run();
    return simr.now();
  };
  EXPECT_DOUBLE_EQ(runOnce(), runOnce());
}

}  // namespace
}  // namespace mqs::sim
