// True positive: a mutable member of a mutex-owning record without
// GUARDED_BY. The same record also carries every legal exemption as
// in-file true negatives.
#include "ranks.hpp"

namespace fx {

class Guarded {
 private:
  Mutex mu_{lockorder::Rank::kMid, "fx.guarded"};
  int counter_ = 0;                    // FINDING: no annotation
  int annotated_ GUARDED_BY(mu_) = 0;  // ok: annotated
  const int limit_ = 8;                // ok: const
  std::atomic<int> hits_{0};           // ok: atomic
  // immutable after construction
  int capacity_ = 64;                  // ok: exempting comment
};

}  // namespace fx
