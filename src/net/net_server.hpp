// TCP front-end for the query server.
//
// One listener thread accepts connections; each connection gets a reader
// thread (decode Query frames, submit to the QueryServer) and a writer
// thread (resolve the submitted futures in request order, emit
// Result/Error frames). Pipelining therefore works: a client may pour a
// whole batch down the socket and read results back as they complete —
// the paper's batch scenario over a real transport.
//
// Each accepted connection is assigned a distinct client id (its accept
// ordinal) and every query it submits carries that id, so the server's
// per-client fairness quotas (DESIGN.md §11) apply at the wire level and
// per-client metrics stay attributable. Overload outcomes —
// QueryRejected at admission, QueryShed at dispatch — travel back as
// Rejected frames carrying the RejectReason discriminator.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "net/codecs.hpp"
#include "server/query_server.hpp"

namespace mqs::net {

class NetServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting.
  NetServer(server::QueryServer& queryServer, const CodecRegistry* codecs,
            std::uint16_t port = 0);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound port (useful with port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Stop accepting, close all connections, join all threads.
  void stop();

  [[nodiscard]] std::uint64_t connectionsAccepted() const {
    return accepted_.load();
  }

 private:
  struct Connection;

  void acceptLoop();
  void serveConnection(int fd, int client);

  server::QueryServer& queryServer_;
  const CodecRegistry* codecs_;  ///< immutable after construction
  std::atomic<int> listenFd_{-1};
  /// Set once before the acceptor thread launches (start() binds, reads
  /// the port back, then spawns the acceptor).
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> accepted_{0};
  /// Outermost rank: the front-end may never be entered while a deeper
  /// subsystem lock is held (connection bookkeeping itself nests nothing).
  Mutex mu_{lockorder::Rank::kNetServer, "NetServer::mu_"};
  std::vector<std::unique_ptr<Connection>> connections_ GUARDED_BY(mu_);
  std::jthread acceptor_;
};

}  // namespace mqs::net
