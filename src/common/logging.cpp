#include "common/logging.hpp"

#include <atomic>
#include <iostream>

#include "common/thread_annotations.hpp"

namespace mqs {

namespace {
std::atomic<LogLevel> gLevel{LogLevel::Warn};
// Innermost rank: MQS_LOG must stay usable under any subsystem lock.
Mutex gMutex{lockorder::Rank::kLogging, "logging::gMutex"};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
  }
  return "?????";
}
}  // namespace

void setLogLevel(LogLevel level) { gLevel.store(level); }
LogLevel logLevel() { return gLevel.load(); }

namespace detail {
void logEmit(LogLevel level, const std::string& message) {
  if (level < gLevel.load()) return;
  MutexLock lock(gMutex);
  std::clog << '[' << levelName(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace mqs
