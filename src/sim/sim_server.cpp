#include "sim/sim_server.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "sim/vm_model.hpp"

namespace mqs::sim {

SimServer::SimServer(Simulator& sim, const vm::VMSemantics* semantics,
                     SimConfig cfg)
    : SimServer(sim, static_cast<const query::QuerySemantics*>(semantics),
                nullptr, std::move(cfg)) {
  ownedModel_ = std::make_unique<VMModel>(semantics, cfg_.cpuPerByteSubsample,
                                          cfg_.cpuPerByteAverage);
  model_ = ownedModel_.get();
}

SimServer::SimServer(Simulator& sim, const query::QuerySemantics* semantics,
                     const AppModel* model, SimConfig cfg)
    : sim_(&sim),
      sem_(semantics),
      model_(model),
      cfg_(std::move(cfg)),
      scheduler_(semantics, sched::makePolicy(cfg_.policy, cfg_.alpha),
                 cfg_.incrementalRanking),
      ds_(cfg_.dsBytes, semantics,
          datastore::parseEvictionPolicy(cfg_.dsEviction)),
      psCore_(cfg_.psBytes),
      planner_(semantics,
               query::PlannerConfig{
                   .dataStoreEnabled = cfg_.dataStoreEnabled,
                   .allowWaitOnExecuting = cfg_.allowWaitOnExecuting,
                   .maxReuseSources = cfg_.maxReuseSources,
                   .candidatePoolSize = std::max(8, 2 * cfg_.maxReuseSources),
                   .maxNestedReuseDepth = cfg_.maxNestedReuseDepth,
                   .minMarginalBytes = 1,
                   // Single-threaded virtual time: nothing can evict a blob
                   // between planning and the step that projects it unless
                   // the plan itself inserts — handled by the contains()
                   // re-check in executePlan, so no pinning needed.
                   .pinSources = false,
               }),
      cpus_(sim, cfg_.cpus) {
  MQS_CHECK(sem_ != nullptr);
  MQS_CHECK(cfg_.threads >= 1);
  MQS_CHECK(cfg_.diskFarm.disks >= 1);
  if (cfg_.ioModel == "kstream") {
    disks_.reserve(static_cast<std::size_t>(cfg_.diskFarm.disks));
    for (int i = 0; i < cfg_.diskFarm.disks; ++i) {
      disks_.push_back(std::make_unique<FcfsServer>(sim));
    }
  } else {
    MQS_CHECK_MSG(cfg_.ioModel == "fifo" || cfg_.ioModel == "elevator",
                  "ioModel must be kstream, fifo, or elevator");
    const DiskDiscipline disc = cfg_.ioModel == "fifo"
                                    ? DiskDiscipline::Fifo
                                    : DiskDiscipline::Elevator;
    posDisks_.reserve(static_cast<std::size_t>(cfg_.diskFarm.disks));
    for (int i = 0; i < cfg_.diskFarm.disks; ++i) {
      posDisks_.push_back(
          std::make_unique<DiskServer>(sim, cfg_.diskFarm.disk, disc));
    }
  }
  ds_.setEvictionListener(
      [this](datastore::EvictedBlob blob) { onBlobEvicted(std::move(blob)); });
  if (cfg_.traceSink != nullptr) {
    tracer_ = cfg_.traceSink.get();
    // Events are stamped with virtual time — the same clock behind every
    // simulated QueryRecord timestamp.
    tracer_->setClock(
        [](void* ctx) { return static_cast<const Simulator*>(ctx)->now(); },
        sim_);
    scheduler_.setTracer(tracer_);
    ds_.setTracer(tracer_);
  }
  // Cost-aware eviction and the spill tier's restore-vs-recompute gate need
  // every blob stamped with its recompute cost in *virtual* seconds. With a
  // sink, its Compute/IoStall spans feed the ledger; without one, a private
  // disabled tracer on the virtual clock does the accounting.
  const bool needCost = datastore::parseEvictionPolicy(cfg_.dsEviction) ==
                            datastore::EvictionPolicy::CostAware ||
                        cfg_.spillBytes > 0;
  if (needCost) {
    if (tracer_ == nullptr) {
      ownedTracer_ = std::make_unique<trace::Tracer>();
      ownedTracer_->setEnabled(false);
      ownedTracer_->setClock(
          [](void* ctx) { return static_cast<const Simulator*>(ctx)->now(); },
          sim_);
      tracer_ = ownedTracer_.get();
      scheduler_.setTracer(tracer_);
      ds_.setTracer(tracer_);
    }
    tracer_->setCostAccounting(true);
  }
  if (cfg_.spillBytes > 0) {
    // Always in-memory in the simulator; restores are priced with the same
    // disk model as the farm's devices.
    spill_ = std::make_unique<datastore::SpillTier>(
        cfg_.spillBytes, sem_, /*dir=*/"", cfg_.diskFarm.disk);
    if (tracer_ != nullptr) spill_->setTracer(tracer_);
  }
}

sched::NodeId SimServer::submit(query::PredicatePtr pred, int client) {
  MQS_CHECK(pred != nullptr);
  MQS_CHECK_MSG(model_ != nullptr, "SimServer needs an application model");
  metrics::QueryRecord rec;
  rec.client = client;
  rec.predicate = pred->describe();
  rec.arrivalTime = sim_->now();
  rec.inputBytes = sem_->qinputsize(*pred);
  rec.outputBytes = sem_->qoutsize(*pred);

  const sched::NodeId node = scheduler_.submit(std::move(pred));
  rec.queryId = node;
  pending_.emplace(node, std::move(rec));
  completion_.emplace(node, std::make_unique<Trigger>(*sim_));
  pump();
  return node;
}

Trigger& SimServer::completionOf(sched::NodeId node) {
  auto it = completion_.find(node);
  MQS_CHECK_MSG(it != completion_.end(), "completionOf unknown query");
  return *it->second;
}

Task<void> SimServer::executeAndWait(query::PredicatePtr pred, int client) {
  const sched::NodeId node = submit(std::move(pred), client);
  co_await completionOf(node).wait();
}

void SimServer::pump() {
  while (active_ < cfg_.threads) {
    auto node = scheduler_.dequeue();
    if (!node) break;
    auto it = pending_.find(*node);
    MQS_DCHECK(it != pending_.end());
    metrics::QueryRecord rec = std::move(it->second);
    pending_.erase(it);
    rec.startTime = sim_->now();
    ++active_;
    sim_->spawn(queryTask(*node, std::move(rec)));
  }
}

Task<void> SimServer::cpuRun(double seconds) {
  if (seconds <= 0.0) co_return;
  co_await cpus_.acquire();
  co_await sim_->delay(seconds);
  cpus_.release();
}

Task<void> SimServer::fetchChunk(storage::PageKey key, std::size_t bytes,
                                 metrics::QueryRecord* rec) {
  if (psCore_.touch(key)) {
    if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::PsHit);
    co_return;  // page space hit
  }
  if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::PsMiss);
  if (auto it = inflight_.find(key); it != inflight_.end()) {
    ++pageMerges_;
    co_await it->second->wait();
    co_return;
  }
  auto trig = std::make_unique<Trigger>(*sim_);
  Trigger* t = trig.get();
  inflight_.emplace(key, std::move(trig));
  // Host-side request path (doesn't occupy the device).
  co_await sim_->delay(cfg_.hostOverheadPerPageSec);
  const int disk = cfg_.diskFarm.diskFor(key.page);
  if (!posDisks_.empty()) {
    // Positional head model: datasets laid out back-to-back on the device.
    const std::uint64_t pos =
        (static_cast<std::uint64_t>(key.dataset) << 32) | key.page;
    co_await posDisks_[static_cast<std::size_t>(disk)]->service(pos, bytes);
  } else {
    // Seek amortization degrades with the number of interleaved streams.
    const int streams = (std::max(1, ioStreams_) + cfg_.diskFarm.disks - 1) /
                        cfg_.diskFarm.disks;
    co_await disks_[static_cast<std::size_t>(disk)]->service(
        cfg_.diskFarm.disk.serviceTime(bytes, streams));
  }
  bytesRead_ += bytes;
  if (rec != nullptr) rec->bytesFromDisk += bytes;
  for (const auto& victim : psCore_.insert(key, bytes)) {
    (void)victim;
    if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::PsEvict);
  }
  t->fire();
  inflight_.erase(key);
}

Task<void> SimServer::computeRaw(query::PredicatePtr pred,
                                 metrics::QueryRecord* rec) {
  // Compute from raw data: fetch each chunk through the page space, then
  // process it (demand comes from the application's cost adapter).
  const std::vector<ChunkDemand> demand = model_->demandFor(*pred);
  ++ioStreams_;
  for (std::size_t i = 0; i < demand.size(); ++i) {
    // Readahead: issue upcoming chunks asynchronously so the device queue
    // sees the query's future (prefetches never block this query).
    for (std::size_t j = i + 1;
         j < demand.size() &&
         j <= i + static_cast<std::size_t>(std::max(0, cfg_.prefetchPages));
         ++j) {
      if (!psCore_.contains(demand[j].page) &&
          !inflight_.contains(demand[j].page)) {
        if (tracer_ != nullptr) {
          tracer_->counter(trace::CounterKind::PrefetchIssued);
        }
        sim_->spawn(fetchChunk(demand[j].page, demand[j].pageBytes, nullptr));
      }
    }
    // A chunk that is not resident stalls this query on device I/O (or on
    // a merged in-flight read); bracket the await so the stall is both a
    // span and the record's ioStallTime — from the same virtual clock, so
    // a query's IO_STALL span total equals its ioStallTime exactly.
    const bool resident = psCore_.contains(demand[i].page);
    const Time stall0 = sim_->now();
    if (!resident && rec != nullptr && tracer_ != nullptr) {
      tracer_->beginSpan(rec->queryId, trace::SpanKind::IoStall);
    }
    co_await fetchChunk(demand[i].page, demand[i].pageBytes, rec);
    if (!resident && rec != nullptr) {
      if (tracer_ != nullptr) {
        tracer_->endSpan(rec->queryId, trace::SpanKind::IoStall);
      }
      rec->ioStallTime += sim_->now() - stall0;
    }
    co_await cpuRun(demand[i].cpuSeconds);
  }
  --ioStreams_;
}

pagespace::ScanRegistry::ScanGuard SimServer::beginScanIfFolding(
    const query::Predicate& pred, const metrics::QueryRecord& rec,
    int depth) {
  if (!cfg_.foldScans || !cfg_.allowWaitOnExecuting || depth != 0) return {};
  pagespace::ScanRegistry::ScanGuard guard =
      scans_.beginScan(pred, rec.queryId, scheduler_.execSeq(rec.queryId));
  scanTrigger_.emplace(guard.id(), std::make_unique<Trigger>(*sim_));
  return guard;
}

void SimServer::publishScan(pagespace::ScanRegistry::ScanGuard& scan) {
  if (!scan.active()) return;
  const query::ScanId id = scan.id();
  // The simulator carries no result bytes: publish an empty payload (the
  // registry state machine is what subscribers consult) and fire the
  // Trigger — waiters resume as events at the current virtual time, after
  // which the Trigger is dead weight and can be retired.
  const int subscribers = scan.publish({});
  if (subscribers > 0 && tracer_ != nullptr) {
    tracer_->counter(trace::CounterKind::FoldSubscribers, subscribers);
  }
  if (const auto it = scanTrigger_.find(id); it != scanTrigger_.end()) {
    it->second->fire();
    scanTrigger_.erase(it);
  }
}

Task<void> SimServer::executePlan(query::ReusePlan plan,
                                  query::PredicatePtr pred, int depth,
                                  metrics::QueryRecord* rec) {
  const auto d8 = static_cast<std::uint8_t>(depth);
  // Raw fast path: a plan without projection steps is a single
  // ComputeRemainder step covering `pred` (mirrors the threaded server's
  // direct-execute path — in particular it does not cache sub-results).
  if (!plan.hasReuse()) {
    trace::SpanScope compute(tracer_, rec->queryId, trace::SpanKind::Compute,
                             d8);
    pagespace::ScanRegistry::ScanGuard scan =
        beginScanIfFolding(*pred, *rec, depth);
    co_await computeRaw(std::move(pred), rec);
    publishScan(scan);
    co_return;
  }

  for (query::PlanStep& step : plan.steps) {
    switch (step.kind) {
      case query::PlanStep::Kind::ProjectFromCached: {
        trace::SpanScope project(tracer_, rec->queryId,
                                 trace::SpanKind::Project, d8,
                                 step.bytesCovered,
                                 trace::kFlagCachedSource);
        // The planner runs unpinned here (single-threaded virtual time),
        // so re-check residency: with threads > 1 another query may have
        // evicted the blob while an earlier step waited or ran CPU.
        if (ds_.contains(step.blob)) {
          co_await cpuRun(static_cast<double>(step.projectionBytes) *
                          cfg_.cpuPerOutByteProject);
          rec->bytesReused += step.bytesCovered;
        } else {
          for (query::PredicatePtr& cp : step.coveredParts) {
            co_await computePart(std::move(cp), depth + 1, rec);
          }
        }
        break;
      }
      case query::PlanStep::Kind::WaitAndProjectFromExecuting: {
        // The PROJECT span covers the whole step — including the fallback
        // compute below — so a query's depth-0 PROJECT count always equals
        // its recorded reuseSources, even when a source vanished.
        trace::SpanScope project(tracer_, rec->queryId,
                                 trace::SpanKind::Project, d8,
                                 step.bytesCovered,
                                 trace::kFlagExecutingSource);
        // Block on the still-executing reuse source. The slot stays
        // occupied — exactly the CPU waste FF/CNBF try to avoid (§4).
        rec->reusedExecuting = true;
        const Time t0 = sim_->now();
        {
          trace::SpanScope wait(tracer_, rec->queryId,
                                trace::SpanKind::WaitSource, d8);
          co_await completionOf(step.node).wait();
        }
        rec->blockedTime += sim_->now() - t0;
        const auto it = nodeBlob_.find(step.node);
        if (it != nodeBlob_.end() && ds_.contains(it->second)) {
          ds_.noteReuse(it->second, step.overlap);
          co_await cpuRun(static_cast<double>(step.projectionBytes) *
                          cfg_.cpuPerOutByteProject);
          rec->bytesReused += step.bytesCovered;
        } else {
          // The source failed, produced an uncacheable result, or was
          // evicted before we could read it: compute this step's share
          // from raw data instead (its coveredParts tile it).
          for (query::PredicatePtr& cp : step.coveredParts) {
            co_await computePart(std::move(cp), depth + 1, rec);
          }
        }
        break;
      }
      case query::PlanStep::Kind::RestoreFromSpill: {
        // The PROJECT span covers restore + projection (and the fallback
        // compute if the entry vanished). The modeled disk read is charged
        // as plain virtual delay — not an IO_STALL span — so a query's
        // IO_STALL span total still equals its recorded ioStallTime (which
        // counts only Page Space stalls, same as the threaded server).
        trace::SpanScope project(tracer_, rec->queryId,
                                 trace::SpanKind::Project, d8,
                                 step.bytesCovered, trace::kFlagSpillSource);
        std::optional<datastore::EvictedBlob> restoredBlob =
            spill_ != nullptr ? spill_->restore(step.spillId) : std::nullopt;
        if (restoredBlob) {
          co_await sim_->delay(step.restoreCostSec);
          // Re-insert with the blob's *original* traced cost; passing it
          // explicitly keeps the restoring query's own ledger untouched.
          const std::uint64_t lb = restoredBlob->logicalBytes;
          const double rc = restoredBlob->recomputeCostSec;
          const std::optional<datastore::BlobId> nb =
              ds_.insert(std::move(restoredBlob->predicate), {}, lb, rc);
          if (const auto nIt = spillNode_.find(step.spillId);
              nIt != spillNode_.end()) {
            const sched::NodeId rn = nIt->second;
            spillNode_.erase(nIt);
            nodeSpill_.erase(rn);
            if (nb) {
              nodeBlob_[rn] = *nb;
              blobNode_[*nb] = rn;
              scheduler_.restored(rn);
            } else {
              // Insert refused (duplicate or over budget): the spill entry
              // is spent, so the node's result is gone for good.
              scheduler_.retired(rn);
            }
          }
          co_await cpuRun(static_cast<double>(step.projectionBytes) *
                          cfg_.cpuPerOutByteProject);
          rec->bytesReused += step.bytesCovered;
        } else {
          // Dropped (or restored by a racing query) between planning and
          // execution: compute this step's share from raw data instead.
          for (query::PredicatePtr& cp : step.coveredParts) {
            co_await computePart(std::move(cp), depth + 1, rec);
          }
        }
        break;
      }
      case query::PlanStep::Kind::FoldIntoScan: {
        // The PROJECT span covers the whole step — including the fallback
        // below — so depth-0 PROJECT count always equals reuseSources even
        // when the scan settled before this step ran.
        trace::SpanScope project(tracer_, rec->queryId,
                                 trace::SpanKind::Project, d8,
                                 step.bytesCovered, trace::kFlagFoldSource);
        pagespace::ScanRegistry::ScanPtr scan = scans_.subscribe(step.scanId);
        bool projected = false;
        if (scan != nullptr) {
          // The fold is real: annotate the graph and suspend on the scan's
          // Trigger (the owner is strictly older by execution sequence, so
          // the wait graph stays acyclic). The slot stays occupied, same
          // as a wait on an executing source.
          scheduler_.noteFold(rec->queryId, step.node);
          if (tracer_ != nullptr) {
            tracer_->counter(trace::CounterKind::FoldHit);
          }
          rec->reusedExecuting = true;
          const Time t0 = sim_->now();
          {
            trace::SpanScope wait(tracer_, rec->queryId,
                                  trace::SpanKind::WaitSource, d8);
            if (const auto tIt = scanTrigger_.find(scan->id);
                tIt != scanTrigger_.end()) {
              co_await tIt->second->wait();
            }
          }
          rec->blockedTime += sim_->now() - t0;
          if (scan->state == pagespace::ScanRegistry::ScanState::Published) {
            // Shared payload: charge projection CPU only — the region's
            // fetches and scan CPU happened once, on the owner.
            co_await cpuRun(static_cast<double>(step.projectionBytes) *
                            cfg_.cpuPerOutByteProject);
            rec->bytesReused += step.bytesCovered;
            if (tracer_ != nullptr) {
              tracer_->counter(trace::CounterKind::ScanBytesShared,
                               static_cast<double>(step.bytesCovered));
            }
            projected = true;
          }
        }
        if (!projected) {
          // The scan settled before we joined, or its owner failed: replan
          // this step's share independently from raw data (the §14 failure
          // contract — a subscriber never hangs).
          for (query::PredicatePtr& cp : step.coveredParts) {
            co_await computePart(std::move(cp), depth + 1, rec);
          }
        }
        break;
      }
      case query::PlanStep::Kind::ComputeRemainder: {
        trace::SpanScope compute(tracer_, rec->queryId,
                                 trace::SpanKind::Compute, d8,
                                 step.bytesCovered);
        pagespace::ScanRegistry::ScanGuard scan =
            beginScanIfFolding(*step.pred, *rec, depth);
        co_await computePart(std::move(step.pred), depth + 1, rec);
        publishScan(scan);
        break;
      }
    }
  }
}

Task<void> SimServer::computePart(query::PredicatePtr part, int depth,
                                  metrics::QueryRecord* rec) {
  // Nested reuse: sub-queries are "processed just like any other query"
  // (§2), so they get their own plan — the planner enforces the depth
  // limit and never waits on executing queries for nested parts.
  const std::uint64_t partOutBytes = sem_->qoutsize(*part);
  query::ReusePlan plan = [&] {
    trace::SpanScope planSpan(tracer_, rec->queryId, trace::SpanKind::Plan,
                              static_cast<std::uint8_t>(depth));
    return planner_.plan(*part, ds_, nullptr, sched::kInvalidNode, depth);
  }();
  co_await executePlan(std::move(plan), part->clone(), depth, rec);
  if (cfg_.dataStoreEnabled && cfg_.cacheSubqueryResults) {
    (void)insertWithCost(std::move(part), partOutBytes, rec->queryId);
  }
}

std::optional<datastore::BlobId> SimServer::insertWithCost(
    query::PredicatePtr pred, std::uint64_t outBytes, std::uint64_t queryId) {
  // Coroutines interleave queries on one OS thread, so the thread-query
  // ledger binding lives only across this synchronous insert (no awaits):
  // the insert takes the query's accrued cost incrementally, and the scope
  // dtor drops whatever remains so fully-reused queries leak no entries.
  trace::Tracer::QueryScope scope(tracer_, queryId);
  return ds_.insert(std::move(pred), {}, outBytes);
}

Task<void> SimServer::queryTask(sched::NodeId node, metrics::QueryRecord rec) {
  const query::PredicatePtr predPtr = scheduler_.predicateOf(node);
  const query::Predicate& pred = *predPtr;

  // The PLAN span covers the modeled planning overhead plus the real
  // planner call (both are "planning" in the lifecycle vocabulary).
  trace::SpanScope planSpan(tracer_, node, trace::SpanKind::Plan);
  co_await cpuRun(cfg_.planningOverheadSec);

  // All source selection happens in the shared planner; record the plan's
  // accounting, then execute its steps with modeled costs. Fold candidates
  // are snapshotted before planning — in virtual time the owner's scan is
  // still Running at the plan instant, so every emitted FoldIntoScan step
  // deterministically finds its scan at execution.
  std::vector<query::FoldCandidate> folds;
  if (cfg_.foldScans && cfg_.allowWaitOnExecuting) {
    folds = scans_.candidatesFor(
        scheduler_.execSeq(node),
        static_cast<std::size_t>(std::max(8, 2 * cfg_.maxReuseSources)));
  }
  query::ReusePlan plan = planner_.plan(pred, ds_, &scheduler_, node,
                                        /*depth=*/0, spill_.get(), folds);
  rec.overlapUsed = plan.primaryOverlap;
  rec.reuseSources = plan.reuseSources();
  rec.planBytesCovered = plan.planBytesCovered;
  rec.planShape = plan.shape();
  for (const query::PlanStep& step : plan.steps) {
    if (step.kind != query::PlanStep::Kind::ComputeRemainder) {
      rec.bytesReusedPerSource.push_back(step.bytesCovered);
    }
  }
  planSpan.close();
  co_await executePlan(std::move(plan), pred.clone(), /*depth=*/0, &rec);

  // The terminal DELIVER span covers result caching, the graph-node
  // transition, and completion delivery (same vocabulary as the threaded
  // server; the simulator has no failure path, so it never carries the
  // failed flag).
  trace::SpanScope deliver(tracer_, node, trace::SpanKind::Deliver);

  // Cache the result (skip exact duplicates of an existing blob). The
  // insert consumes the query's accrued recompute-cost ledger; a query
  // that caches nothing has its ledger dropped by the same scope.
  std::optional<datastore::BlobId> blob;
  if (cfg_.dataStoreEnabled && rec.overlapUsed < 1.0) {
    blob = insertWithCost(pred.clone(), sem_->qoutsize(pred), node);
  } else {
    trace::Tracer::QueryScope scope(tracer_, node);
  }
  finishNode(node, blob);

  // Feedback for self-tuning policies: achieved reuse, plus the current
  // disk-queue pressure normalized by the thread pool size.
  scheduler_.reportQueryOutcome(rec.overlapUsed);
  std::size_t queued = 0;
  for (const auto& d : disks_) queued += d->queueLength();
  for (const auto& d : posDisks_) queued += d->queueLength();
  scheduler_.reportResourceSignal(
      std::min(1.0, static_cast<double>(queued) /
                        static_cast<double>(cfg_.threads)));

  deliver.close();
  rec.finishTime = sim_->now();
  collector_.add(rec);
  --active_;
  completionOf(node).fire();
  pump();
}

void SimServer::finishNode(sched::NodeId node,
                           std::optional<datastore::BlobId> blob) {
  if (blob) {
    nodeBlob_[node] = *blob;
    blobNode_[*blob] = node;
  }
  scheduler_.completed(node);
  if (!blob) {
    // Nothing cached for this node: it cannot serve as a reuse source, so
    // it leaves the graph immediately (as if swapped out).
    scheduler_.retired(node);
    return;
  }
  if (evictedWhileExecuting_.erase(node) > 0) {
    // Our blob was reclaimed before we even finished (tiny Data Store).
    nodeBlob_.erase(node);
    blobNode_.erase(*blob);
    scheduler_.retired(node);
  }
}

void SimServer::onBlobEvicted(datastore::EvictedBlob blob) {
  sched::NodeId node = sched::kInvalidNode;
  if (const auto it = blobNode_.find(blob.id); it != blobNode_.end()) {
    node = it->second;
    blobNode_.erase(it);
    nodeBlob_.erase(node);
    if (scheduler_.stateOf(node) != sched::QueryState::Cached) {
      // Evicted before its own query finished (tiny Data Store): the
      // finisher retires the node; nothing worth spilling yet.
      evictedWhileExecuting_.insert(node);
      return;
    }
  }
  if (spill_ == nullptr) {
    // No tier: eviction is terminal, exactly the historical behaviour
    // (retired() on a CACHED node counts one swap-out and removes it).
    if (node != sched::kInvalidNode) scheduler_.retired(node);
    return;
  }
  std::vector<datastore::SpillId> droppedIds;
  const std::optional<datastore::SpillId> sid =
      spill_->demote(std::move(blob), &droppedIds);
  if (node != sched::kInvalidNode) {
    if (sid) {
      nodeSpill_[node] = *sid;
      spillNode_[*sid] = node;
      scheduler_.swappedOut(node);
    } else {
      scheduler_.retired(node);  // blob alone exceeds the tier
    }
  }
  for (const datastore::SpillId d : droppedIds) retireSpilled(d);
}

void SimServer::retireSpilled(datastore::SpillId sid) {
  const auto it = spillNode_.find(sid);
  if (it == spillNode_.end()) return;  // sub-query entry, no graph node
  const sched::NodeId node = it->second;
  spillNode_.erase(it);
  nodeSpill_.erase(node);
  scheduler_.retired(node);
}

SimServer::IoStats SimServer::ioStats() const {
  IoStats s;
  const auto& c = psCore_.stats();
  s.pageHits = c.hits;
  s.pageMerges = pageMerges_;
  s.pageReads = c.misses - pageMerges_;
  s.bytesRead = bytesRead_;
  for (const auto& d : disks_) s.diskBusyIntegral += d->busyIntegral();
  for (const auto& d : posDisks_) {
    s.diskBusyIntegral += d->busyIntegral();
    s.sequentialReads += d->sequentialServed();
  }
  return s;
}

}  // namespace mqs::sim
