#include "vm/vm_executor.hpp"

#include <gtest/gtest.h>

#include "pagespace/page_space_manager.hpp"
#include "storage/synthetic_source.hpp"
#include "vm/image.hpp"

namespace mqs::vm {
namespace {

constexpr std::uint64_t kSeed = 4242;

class VMExecutorTest : public ::testing::Test {
 protected:
  VMExecutorTest()
      : layout_(1024, 1024, 96),  // non-power-of-two chunks on purpose
        slide_(layout_, kSeed),
        exec_(&sem_),
        ps_(16ULL << 20) {
    dsid_ = sem_.addDataset(layout_);
    ps_.attach(dsid_, &slide_);
  }

  VMPredicate make(Rect r, std::uint32_t zoom, VMOp op) {
    return VMPredicate(dsid_, r, zoom, op);
  }

  ImageRGB run(const VMPredicate& q) {
    const auto bytes = exec_.execute(q, ps_);
    return ImageRGB::fromBytes(bytes, q.outWidth(), q.outHeight());
  }

  index::ChunkLayout layout_;
  storage::SyntheticSlideSource slide_;
  VMSemantics sem_;
  VMExecutor exec_;
  pagespace::PageSpaceManager ps_;
  storage::DatasetId dsid_ = 0;
};

struct Case {
  Rect region;
  std::uint32_t zoom;
  VMOp op;
};

class VMExecutorParamTest : public VMExecutorTest,
                            public ::testing::WithParamInterface<Case> {};

TEST_P(VMExecutorParamTest, ExecuteMatchesReferenceExactly) {
  const Case& c = GetParam();
  const VMPredicate q = make(c.region, c.zoom, c.op);
  const ImageRGB got = run(q);
  const ImageRGB expect = renderReference(q, kSeed);
  EXPECT_EQ(maxAbsDiff(got, expect), 0) << q.describe();
}

INSTANTIATE_TEST_SUITE_P(
    RegionsZoomsOps, VMExecutorParamTest,
    ::testing::Values(
        // zoom 1 = identity copy, chunk-aligned region
        Case{Rect::ofSize(0, 0, 96, 96), 1, VMOp::Subsample},
        Case{Rect::ofSize(0, 0, 96, 96), 1, VMOp::Average},
        // unaligned region spanning chunk boundaries
        Case{Rect::ofSize(50, 70, 200, 120), 2, VMOp::Subsample},
        Case{Rect::ofSize(50, 70, 200, 120), 2, VMOp::Average},
        // larger zooms
        Case{Rect::ofSize(128, 256, 512, 256), 4, VMOp::Subsample},
        Case{Rect::ofSize(128, 256, 512, 256), 4, VMOp::Average},
        Case{Rect::ofSize(0, 0, 1024, 1024), 8, VMOp::Subsample},
        Case{Rect::ofSize(0, 0, 1024, 1024), 8, VMOp::Average},
        // odd origin (not grid-aligned) still renders correctly
        Case{Rect::ofSize(3, 5, 250, 130), 1, VMOp::Subsample},
        Case{Rect::ofSize(17, 9, 96, 64), 1, VMOp::Average}));

TEST_F(VMExecutorTest, IntraQueryParallelismIsBitIdentical) {
  for (const VMOp op : {VMOp::Subsample, VMOp::Average}) {
    for (const int threads : {2, 3, 5, 8}) {
      const VMExecutor parallel(&sem_, threads);
      // Height 260 does not divide evenly by most band counts.
      const VMPredicate q = make(Rect::ofSize(12, 8, 520, 520), 2, op);
      const auto serialBytes = exec_.execute(q, ps_);
      const auto parallelBytes = parallel.execute(q, ps_);
      ASSERT_EQ(parallelBytes.size(), serialBytes.size());
      EXPECT_EQ(parallelBytes, serialBytes)
          << toString(op) << " threads=" << threads;
    }
  }
}

TEST_F(VMExecutorTest, ParallelExecutorPropagatesErrors) {
  const VMExecutor parallel(&sem_, 4);
  const VMPredicate outside = make(Rect::ofSize(900, 900, 512, 512), 2,
                                   VMOp::Subsample);
  EXPECT_THROW((void)parallel.execute(outside, ps_), CheckFailure);
}

TEST_F(VMExecutorTest, TinyQueriesFallBackToSerial) {
  const VMExecutor parallel(&sem_, 16);
  const VMPredicate q = make(Rect::ofSize(0, 0, 8, 8), 2, VMOp::Average);
  // outHeight 4 < 16 threads: serial path, still correct.
  const auto bytes = parallel.execute(q, ps_);
  EXPECT_EQ(maxAbsDiff(ImageRGB::fromBytes(bytes, 4, 4),
                       renderReference(q, kSeed)),
            0);
}

TEST_F(VMExecutorTest, SameZoomProjectionIsExactCopy) {
  const VMPredicate cached = make(Rect::ofSize(0, 0, 512, 512), 4,
                                  VMOp::Subsample);
  const auto cachedBytes = exec_.execute(cached, ps_);
  // Query = sub-region of cached, same zoom.
  const VMPredicate q = make(Rect::ofSize(128, 128, 256, 256), 4,
                             VMOp::Subsample);
  std::vector<std::byte> out(q.outBytes());
  exec_.project(cached, cachedBytes, q, out);
  const ImageRGB got = ImageRGB::fromBytes(out, q.outWidth(), q.outHeight());
  const ImageRGB expect = renderReference(q, kSeed);
  EXPECT_EQ(maxAbsDiff(got, expect), 0);
}

TEST_F(VMExecutorTest, SubsampleProjectionAcrossZoomsIsExact) {
  const VMPredicate cached = make(Rect::ofSize(0, 0, 512, 512), 2,
                                  VMOp::Subsample);
  const auto cachedBytes = exec_.execute(cached, ps_);
  const VMPredicate q = make(Rect::ofSize(0, 0, 512, 512), 8, VMOp::Subsample);
  std::vector<std::byte> out(q.outBytes());
  exec_.project(cached, cachedBytes, q, out);
  const ImageRGB got = ImageRGB::fromBytes(out, q.outWidth(), q.outHeight());
  // Subsampling every 8th pixel == every 4th of every 2nd: bit-exact.
  EXPECT_EQ(maxAbsDiff(got, renderReference(q, kSeed)), 0);
}

TEST_F(VMExecutorTest, AverageProjectionAcrossZoomsWithinRounding) {
  const VMPredicate cached = make(Rect::ofSize(0, 0, 512, 512), 2,
                                  VMOp::Average);
  const auto cachedBytes = exec_.execute(cached, ps_);
  const VMPredicate q = make(Rect::ofSize(0, 0, 512, 512), 8, VMOp::Average);
  std::vector<std::byte> out(q.outBytes());
  exec_.project(cached, cachedBytes, q, out);
  const ImageRGB got = ImageRGB::fromBytes(out, q.outWidth(), q.outHeight());
  // Averaging averages of uint8 loses at most 1 count per stage.
  EXPECT_LE(maxAbsDiff(got, renderReference(q, kSeed)), 2);
}

TEST_F(VMExecutorTest, ProjectionWithOffsetOrigins) {
  // Cached blob origin differs from the query origin by a multiple of I_S.
  const VMPredicate cached = make(Rect::ofSize(64, 32, 512, 512), 2,
                                  VMOp::Subsample);
  const auto cachedBytes = exec_.execute(cached, ps_);
  const VMPredicate q = make(Rect::ofSize(128, 96, 256, 256), 4,
                             VMOp::Subsample);
  std::vector<std::byte> out(q.outBytes());
  exec_.project(cached, cachedBytes, q, out);
  EXPECT_EQ(maxAbsDiff(ImageRGB::fromBytes(out, q.outWidth(), q.outHeight()),
                       renderReference(q, kSeed)),
            0);
}

TEST_F(VMExecutorTest, PartialCoverageProjectsOnlyCoveredRegion) {
  const VMPredicate cached = make(Rect::ofSize(0, 0, 256, 512), 4,
                                  VMOp::Subsample);
  const auto cachedBytes = exec_.execute(cached, ps_);
  const VMPredicate q = make(Rect::ofSize(0, 0, 512, 512), 4, VMOp::Subsample);
  std::vector<std::byte> out(q.outBytes(), std::byte{0xEE});
  exec_.project(cached, cachedBytes, q, out);
  const ImageRGB got = ImageRGB::fromBytes(out, q.outWidth(), q.outHeight());
  const ImageRGB expect = renderReference(q, kSeed);
  // Left half (covered) exact; right half untouched sentinel.
  for (std::int64_t y = 0; y < got.height; ++y) {
    for (std::int64_t x = 0; x < got.width; ++x) {
      for (int ch = 0; ch < 3; ++ch) {
        if (x < 64) {
          ASSERT_EQ(got.at(x, y, ch), expect.at(x, y, ch));
        } else {
          ASSERT_EQ(got.at(x, y, ch), 0xEE);
        }
      }
    }
  }
}

TEST_F(VMExecutorTest, RemainderAssemblyReconstructsFullQuery) {
  // Emulate the server's reuse path end to end: project a cached blob,
  // compute remainder parts, assemble, compare against direct execution.
  const VMPredicate cached = make(Rect::ofSize(128, 128, 256, 256), 4,
                                  VMOp::Subsample);
  const auto cachedBytes = exec_.execute(cached, ps_);
  const VMPredicate q = make(Rect::ofSize(0, 0, 512, 512), 4, VMOp::Subsample);

  std::vector<std::byte> out(q.outBytes());
  exec_.project(cached, cachedBytes, q, out);
  for (const auto& part : sem_.remainder(cached, q)) {
    const auto partBytes = exec_.execute(*part, ps_);
    exec_.project(*part, partBytes, q, out);
  }
  EXPECT_EQ(maxAbsDiff(ImageRGB::fromBytes(out, q.outWidth(), q.outHeight()),
                       renderReference(q, kSeed)),
            0);
}

TEST_F(VMExecutorTest, ProjectWithZeroOverlapThrows) {
  const VMPredicate cached = make(Rect::ofSize(0, 0, 128, 128), 4,
                                  VMOp::Subsample);
  const VMPredicate q = make(Rect::ofSize(512, 512, 128, 128), 4,
                             VMOp::Subsample);
  std::vector<std::byte> dummy(cached.outBytes());
  std::vector<std::byte> out(q.outBytes());
  EXPECT_THROW(exec_.project(cached, dummy, q, out), CheckFailure);
}

TEST_F(VMExecutorTest, RegionOutsideExtentThrows) {
  const VMPredicate q = make(Rect::ofSize(512, 512, 1024, 1024), 4,
                             VMOp::Subsample);
  EXPECT_THROW((void)exec_.execute(q, ps_), CheckFailure);
}

TEST_F(VMExecutorTest, WritePpmRoundTrip) {
  const VMPredicate q = make(Rect::ofSize(0, 0, 64, 64), 1, VMOp::Subsample);
  const ImageRGB img = run(q);
  const auto path = std::filesystem::temp_directory_path() / "mqs_test.ppm";
  ASSERT_TRUE(writePpm(img, path));
  EXPECT_GT(std::filesystem::file_size(path), 64u * 64 * 3);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace mqs::vm
