// Property tests for the scheduler: a seeded random stream of arrivals,
// dequeues, completions, swap-outs, restores, retirements, and failures
// drives two schedulers in lockstep — one with incremental neighborhood re-ranking (the production
// configuration, §4) and one recomputing every waiting rank from scratch.
// They must make identical decisions; the graph must keep its structural
// invariants; every edge must carry the Eq. 4 weight
// w(i, j) = overlap(i, j) * qoutsize(i).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sched/policy.hpp"
#include "sched/scheduler.hpp"
#include "vm/vm_predicate.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs::sched {
namespace {

using vm::VMOp;
using vm::VMPredicate;

class SchedulerPropertyTest : public ::testing::TestWithParam<std::string> {
 protected:
  SchedulerPropertyTest() {
    (void)sem_.addDataset(index::ChunkLayout(16384, 16384, 128));
  }

  /// Random predicate whose origin/size snap to a grid every zoom level
  /// divides, so overlap edges actually form (the Eq. 4 alignment rule).
  query::PredicatePtr randomPred(Rng& rng) {
    const std::uint32_t zoom = 1u << rng.uniformInt(1, 3);  // 2, 4, 8
    const std::int64_t grid = 32;
    const std::int64_t x = rng.uniformInt(0, 64) * grid;
    const std::int64_t y = rng.uniformInt(0, 64) * grid;
    const std::int64_t w = rng.uniformInt(2, 24) * grid;
    const std::int64_t h = rng.uniformInt(2, 24) * grid;
    return std::make_unique<VMPredicate>(0, Rect::ofSize(x, y, w, h), zoom,
                                         VMOp::Subsample);
  }

  vm::VMSemantics sem_;
};

TEST_P(SchedulerPropertyTest, IncrementalMatchesFullRecompute) {
  const std::string& policy = GetParam();
  QueryScheduler inc(&sem_, makePolicy(policy, 0.2), /*incremental=*/true);
  QueryScheduler full(&sem_, makePolicy(policy, 0.2), /*incremental=*/false);

  Rng rng(0xfeedULL);
  std::vector<NodeId> executing;
  std::vector<NodeId> cached;
  std::vector<NodeId> swapped;
  std::size_t waiting = 0;

  // Uniform pick-and-remove from a node pool.
  const auto take = [&rng](std::vector<NodeId>& pool) {
    const std::size_t i = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(pool.size()) - 1));
    const NodeId n = pool[i];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
    return n;
  };

  for (int step = 0; step < 600; ++step) {
    const double dice = rng.uniform01();
    if (dice < 0.40) {
      // Arrival. Identical submit sequences give identical node ids, so
      // one id stream drives both instances.
      auto p = randomPred(rng);
      const NodeId a = inc.submit(p->clone());
      const NodeId b = full.submit(std::move(p));
      ASSERT_EQ(a, b);
      ++waiting;
    } else if (dice < 0.65) {
      // Dispatch: THE property — both heaps must pick the same query.
      const auto a = inc.dequeue();
      const auto b = full.dequeue();
      ASSERT_EQ(a, b) << "policy " << policy << " diverged at step " << step;
      if (a) {
        executing.push_back(*a);
        --waiting;
      }
    } else if (dice < 0.70 && executing.size() >= 2) {
      // Fold: one executing query subscribes to another's shared scan
      // (DESIGN.md §14). noteFold records the fold edge and re-ranks the
      // subscriber's waiting neighborhood, so the incremental and full
      // schedulers must keep agreeing through fold-edge transitions.
      const std::size_t i = static_cast<std::size_t>(rng.uniformInt(
          0, static_cast<std::int64_t>(executing.size()) - 1));
      std::size_t j = static_cast<std::size_t>(rng.uniformInt(
          0, static_cast<std::int64_t>(executing.size()) - 2));
      if (j >= i) ++j;  // distinct owner
      inc.noteFold(executing[i], executing[j]);
      full.noteFold(executing[i], executing[j]);
    } else if (dice < 0.80 && !executing.empty()) {
      // Completion (or, 1 in 5, a failure) of a random executing query.
      const NodeId n = take(executing);
      if (rng.uniform01() < 0.2) {
        inc.failed(n);
        full.failed(n);
      } else {
        inc.completed(n);
        full.completed(n);
        cached.push_back(n);
      }
    } else if (dice < 0.88 && !cached.empty()) {
      // Demotion of a random cached result (SWAPPED_OUT is retained).
      const NodeId n = take(cached);
      inc.swappedOut(n);
      full.swappedOut(n);
      swapped.push_back(n);
    } else if (dice < 0.94 && !swapped.empty()) {
      // Spill restore: SWAPPED_OUT -> CACHED, ranks must re-agree.
      const NodeId n = take(swapped);
      inc.restored(n);
      full.restored(n);
      cached.push_back(n);
    } else if (!cached.empty() || !swapped.empty()) {
      // Terminal retirement from either retained state.
      const bool fromCached =
          !cached.empty() && (swapped.empty() || rng.uniform01() < 0.5);
      const NodeId n = take(fromCached ? cached : swapped);
      inc.retired(n);
      full.retired(n);
    }

    ASSERT_EQ(inc.waitingCount(), full.waitingCount());
    ASSERT_EQ(inc.waitingCount(), waiting);
    ASSERT_EQ(inc.executingCount(), executing.size());
    if (step % 50 == 0) {
      ASSERT_TRUE(inc.graphUnsafe().checkInvariants());
      ASSERT_TRUE(full.graphUnsafe().checkInvariants());
    }
  }

  // Drain both: the remaining dispatch order must also agree.
  for (;;) {
    const auto a = inc.dequeue();
    const auto b = full.dequeue();
    ASSERT_EQ(a, b);
    if (!a) break;
    inc.failed(*a);  // retire so the drain terminates
    full.failed(*b);
  }
  EXPECT_EQ(inc.stats().dequeued, full.stats().dequeued);
  EXPECT_EQ(inc.stats().failedCount, full.stats().failedCount);
  // Both instances saw the identical fold stream, and the random walk must
  // actually have exercised fold-edge transitions (not passed vacuously).
  EXPECT_EQ(inc.stats().foldEdges, full.stats().foldEdges);
  EXPECT_GT(inc.stats().foldEdges, 0u);
}

TEST_P(SchedulerPropertyTest, EdgeWeightsFollowEquationFour) {
  QueryScheduler s(&sem_, makePolicy(GetParam(), 0.2));
  Rng rng(0xbeefULL);
  for (int i = 0; i < 80; ++i) (void)s.submit(randomPred(rng));

  const SchedulingGraph& g = s.graphUnsafe();
  ASSERT_TRUE(g.checkInvariants());
  std::size_t checkedEdges = 0;
  g.forEachNode([&](NodeId n) {
    const query::Predicate& pn = g.predicate(n);
    for (const Edge& e : g.outEdges(n)) {
      const query::Predicate& pk = g.predicate(e.peer);
      const double ov = sem_.overlap(pn, pk);
      EXPECT_DOUBLE_EQ(e.overlap, ov);
      EXPECT_GT(e.overlap, 0.0);
      EXPECT_LE(e.overlap, 1.0);
      // Eq. 4: the edge from i to j is worth the overlap fraction times
      // the byte size of i's result that j would reuse.
      EXPECT_DOUBLE_EQ(e.weight,
                       ov * static_cast<double>(g.qoutsize(n)));
      ++checkedEdges;
    }
  });
  // The aligned random workload must actually produce overlap structure,
  // or this test would pass vacuously.
  EXPECT_GT(checkedEdges, 50u);
}

TEST_P(SchedulerPropertyTest, FailedRemovesNodeAndReranksNeighbors) {
  QueryScheduler s(&sem_, makePolicy(GetParam(), 0.2));
  Rng rng(0xabcULL);
  std::vector<NodeId> ids;
  for (int i = 0; i < 20; ++i) ids.push_back(s.submit(randomPred(rng)));

  const auto first = s.dequeue();
  ASSERT_TRUE(first.has_value());
  s.failed(*first);
  EXPECT_FALSE(s.stateOf(*first).has_value());  // gone from the graph
  EXPECT_EQ(s.stats().failedCount, 1u);
  EXPECT_TRUE(s.graphUnsafe().checkInvariants());

  // The scheduler still drains every remaining query exactly once.
  std::vector<NodeId> order;
  while (auto n = s.dequeue()) {
    order.push_back(*n);
    s.completed(*n);
    s.swappedOut(*n);
  }
  EXPECT_EQ(order.size(), ids.size() - 1);
  std::sort(order.begin(), order.end());
  EXPECT_TRUE(std::adjacent_find(order.begin(), order.end()) == order.end());
  EXPECT_EQ(s.waitingCount(), 0u);
  EXPECT_EQ(s.executingCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(PaperPolicies, SchedulerPropertyTest,
                         ::testing::ValuesIn(paperPolicyNames()),
                         [](const auto& paramInfo) { return paramInfo.param; });

}  // namespace
}  // namespace mqs::sched
