# Empty compiler generated dependencies file for fig4_response_vs_threads.
# This may be replaced when dependencies are built.
