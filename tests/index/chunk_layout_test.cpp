#include "index/chunk_layout.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace mqs::index {
namespace {

TEST(ChunkLayout, GridDimensions) {
  const ChunkLayout l(1000, 600, 100);
  EXPECT_EQ(l.chunksPerRow(), 10);
  EXPECT_EQ(l.chunksPerCol(), 6);
  EXPECT_EQ(l.chunkCount(), 60u);
  EXPECT_EQ(l.fullChunkBytes(), 100u * 100 * 3);
}

TEST(ChunkLayout, EdgeChunksAreClipped) {
  const ChunkLayout l(250, 130, 100);
  EXPECT_EQ(l.chunksPerRow(), 3);
  EXPECT_EQ(l.chunksPerCol(), 2);
  // Bottom-right chunk: 50 wide, 30 tall.
  const Rect last = l.chunkRect(5);
  EXPECT_EQ(last, (Rect{200, 100, 250, 130}));
  EXPECT_EQ(l.chunkBytes(5), 50u * 30 * 3);
}

TEST(ChunkLayout, ChunkRectRowMajor) {
  const ChunkLayout l(300, 300, 100);
  EXPECT_EQ(l.chunkRect(0), Rect::ofSize(0, 0, 100, 100));
  EXPECT_EQ(l.chunkRect(1), Rect::ofSize(100, 0, 100, 100));
  EXPECT_EQ(l.chunkRect(3), Rect::ofSize(0, 100, 100, 100));
}

TEST(ChunkLayout, ChunkAtInvertsChunkRect) {
  const ChunkLayout l(550, 420, 128);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const auto x = rng.uniformInt(0, 549);
    const auto y = rng.uniformInt(0, 419);
    const auto id = l.chunkAt(x, y);
    EXPECT_TRUE(l.chunkRect(id).contains(Point{x, y}));
  }
}

TEST(ChunkLayout, ChunksIntersectingSingle) {
  const ChunkLayout l(300, 300, 100);
  const auto refs = l.chunksIntersecting(Rect::ofSize(10, 10, 20, 20));
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].id, 0u);
}

TEST(ChunkLayout, ChunksIntersectingSpansGrid) {
  const ChunkLayout l(300, 300, 100);
  const auto refs = l.chunksIntersecting(Rect::ofSize(50, 50, 200, 200));
  EXPECT_EQ(refs.size(), 9u);  // touches all 3x3 chunks
}

TEST(ChunkLayout, ChunksIntersectingHalfOpenBoundary) {
  const ChunkLayout l(300, 300, 100);
  // Region ending exactly at x=100 must not pull in the second column.
  const auto refs = l.chunksIntersecting(Rect::ofSize(0, 0, 100, 100));
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].id, 0u);
}

TEST(ChunkLayout, ChunksIntersectingOutsideIsEmpty) {
  const ChunkLayout l(300, 300, 100);
  EXPECT_TRUE(l.chunksIntersecting(Rect::ofSize(400, 0, 10, 10)).empty());
  EXPECT_TRUE(l.chunksIntersecting(Rect{}).empty());
}

TEST(ChunkLayout, ChunksIntersectingClipsToExtent) {
  const ChunkLayout l(300, 300, 100);
  const auto refs = l.chunksIntersecting(Rect::ofSize(250, 250, 500, 500));
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].id, 8u);
}

TEST(ChunkLayout, InputBytesMatchesChunkSum) {
  const ChunkLayout l(250, 130, 100);
  // Whole image: sum of all chunk bytes = 250*130*3.
  EXPECT_EQ(l.inputBytes(l.extent()), 250u * 130 * 3);
  // A region inside one chunk costs the whole chunk.
  EXPECT_EQ(l.inputBytes(Rect::ofSize(10, 10, 5, 5)), 100u * 100 * 3);
}

TEST(ChunkLayout, InputBytesGrowsWithRegion) {
  const ChunkLayout l(1000, 1000, 100);
  const auto small = l.inputBytes(Rect::ofSize(0, 0, 100, 100));
  const auto large = l.inputBytes(Rect::ofSize(0, 0, 500, 500));
  EXPECT_GT(large, small);
  EXPECT_EQ(large, 25u * 100 * 100 * 3);
}

TEST(ChunkLayout, ChunksTileTheImageExactly) {
  const ChunkLayout l(330, 170, 64);
  std::vector<Rect> rects;
  for (std::uint64_t id = 0; id < l.chunkCount(); ++id) {
    rects.push_back(l.chunkRect(id));
  }
  EXPECT_TRUE(exactlyCovers(l.extent(), rects));
}

TEST(ChunkLayout, RejectsBadParameters) {
  EXPECT_THROW(ChunkLayout(0, 10, 10), CheckFailure);
  EXPECT_THROW(ChunkLayout(10, 10, 0), CheckFailure);
  EXPECT_THROW(ChunkLayout(10, -1, 5), CheckFailure);
}

/// Paper configuration: 30000x30000 3-byte pixels, ~64KB square chunks.
TEST(ChunkLayout, PaperScaleDataset) {
  const ChunkLayout l(30000, 30000, 146);
  EXPECT_LE(l.fullChunkBytes(), 64u * 1024);
  EXPECT_GT(l.fullChunkBytes(), 60u * 1024);
  EXPECT_EQ(l.inputBytes(l.extent()), 30000ull * 30000 * 3);  // 2.5GB+
}

}  // namespace
}  // namespace mqs::index
