// True negative: nested acquisition in ascending rank order is legal.
#include "ranks.hpp"

namespace fx {

class OrderOwner {
 public:
  void good() {
    MutexLock a(lo_);
    MutexLock b(hi_);  // 10 then 50: ascending, fine
  }

 private:
  Mutex lo_{lockorder::Rank::kLow, "fx.ord.lo"};
  Mutex hi_{lockorder::Rank::kHigh, "fx.ord.hi"};
};

}  // namespace fx
