# Empty dependencies file for fig6_response_vs_dsmem.
# This may be replaced when dependencies are built.
