file(REMOVE_RECURSE
  "CMakeFiles/mqs_datastore.dir/data_store.cpp.o"
  "CMakeFiles/mqs_datastore.dir/data_store.cpp.o.d"
  "libmqs_datastore.a"
  "libmqs_datastore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqs_datastore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
