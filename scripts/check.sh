#!/usr/bin/env bash
# Tier-1 gate: static analysis (scripts/lint.sh), build + full test suite,
# then the static/fault/soak/fuzz label matrix, an ASan+UBSan pass over the
# fault-injection suites, and a ThreadSanitizer build of the
# concurrency-sensitive suites.
# Usage: scripts/check.sh [--lint] [--no-lint] [--no-tsan] [--no-asan]
#   --lint runs ONLY the static-analysis gate (fast pre-commit loop).
#   MQS_SOAK_SEED / MQS_SOAK_ITERS tune the soak (see tests/integration/
#   fault_soak_test.cpp); e.g. MQS_SOAK_ITERS=50 scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
run_asan=1
run_lint=1
lint_only=0
for arg in "$@"; do
  case "$arg" in
    --lint) lint_only=1 ;;
    --no-lint) run_lint=0 ;;
    --no-tsan) run_tsan=0 ;;
    --no-asan) run_asan=0 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

if [ "$lint_only" = 1 ]; then
  scripts/lint.sh
  exit 0
fi

if [ "$run_lint" = 1 ]; then
  echo "== static analysis =="
  scripts/lint.sh
else
  echo "== skipping lint =="
fi

echo "== tier-1 build =="
cmake -B build -S . -DMQS_WERROR=ON
cmake --build build -j

echo "== tier-1 tests =="
ctest --test-dir build --output-on-failure -j "$(nproc)"

# Whole-program lock-discipline analysis (DESIGN.md §15): the three
# mqs-analyze checks over every TU in the compilation database, gated on
# the committed baseline. `--target analyze` wraps the same invocation.
echo "== mqs-analyze (lock graph, GUARDED_BY coverage, blocking-under-lock) =="
build/tools/analyzer/mqs-analyze \
  -p build/compile_commands.json \
  --src-root src \
  --design DESIGN.md \
  --baseline tools/analyzer/baseline.txt \
  --config tools/analyzer/analyze.conf \
  --lockgraph-out results/lockgraph.json

# Label matrix: each suite group must be runnable on its own, so a CI
# job (or a bug hunt) can target just the static, fault, soak, fuzz,
# planner, or trace tests. --no-tests=error: `ctest -L <label>` exits 0
# when the label matches nothing, so a renamed/unregistered label would
# silently pass without it (scripts/lint_rules.py R6 guards the registry
# side of the same failure).
for label in static fault soak fuzz planner trace shard overload cache fold; do
  echo "== label: $label =="
  ctest --test-dir build --output-on-failure -j "$(nproc)" -L "$label" \
    --no-tests=error
done

FAULT_SUITES="faulty_source_test fault_retry_test failure_semantics_test \
  wire_fuzz_test fault_soak_test"
TRACE_SUITES="trace_invariants_test trace_export_test"
# The overload suites (DESIGN.md §11) run under both sanitizers: admission
# control races submit threads against workers, and the wire tests drive a
# real TCP server under flood, quota, and deadline-shed pressure.
OVERLOAD_SUITES="arrival_test latency_histogram_test workload_zipf_test \
  admission_test overload_wire_test"
# The lock-rank checker and the annotated queue run under both sanitizers:
# their tests exercise the Mutex/CondVar wrappers every subsystem now uses.
STATIC_SUITES="lock_order_test queue_pool_test"
# The sharded-state suite (DESIGN.md §10) runs under both sanitizers too:
# its randomized multi-threaded tests are the data-race net for the
# per-shard locking in the Data Store / Page Space Manager.
SHARD_SUITES="shard_consistency_test"
# The cost-aware caching / spill-tier suites (DESIGN.md §13): the spill
# tier owns a background writer thread and the eviction listener crosses
# the server/scheduler/store lock ranks, so both sanitizers cover them
# (and the debug builds arm the eviction-listener reentrancy death test).
CACHE_SUITES="spill_tier_test lru_differential_test \
  eviction_reentrancy_death_test swap_restore_test"
# The dynamic-folding suites (DESIGN.md §14) run under both sanitizers:
# the scan registry multicasts one payload to racing subscribers, the
# equivalence test races folding servers against the reference renderer,
# and the fault test injects device failures into shared scans.
FOLD_SUITES="scan_registry_test fold_equivalence_test fold_fault_test"

if [ "$run_asan" = 1 ]; then
  echo "== ASan+UBSan build (fault + trace + static + shard + overload + cache + fold suites) =="
  cmake -B build-asan -S . -DMQS_SANITIZE=address,undefined
  # shellcheck disable=SC2086
  cmake --build build-asan -j --target $FAULT_SUITES $TRACE_SUITES \
    $STATIC_SUITES $SHARD_SUITES $OVERLOAD_SUITES $CACHE_SUITES $FOLD_SUITES

  echo "== ASan+UBSan tests =="
  export ASAN_OPTIONS="detect_leaks=1 halt_on_error=1"
  export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1"
  for t in $FAULT_SUITES $TRACE_SUITES $STATIC_SUITES $SHARD_SUITES \
           $OVERLOAD_SUITES $CACHE_SUITES $FOLD_SUITES; do
    echo "--- $t ---"
    "build-asan/tests/$t"
  done
else
  echo "== skipping ASan pass =="
fi

if [ "$run_tsan" = 1 ]; then
  echo "== TSan build (pagespace + vm + fault + trace + static + shard + overload + cache + fold suites) =="
  cmake -B build-tsan -S . -DMQS_SANITIZE=thread
  # shellcheck disable=SC2086
  cmake --build build-tsan -j --target \
    page_cache_core_test page_space_manager_test prefetch_pipeline_test \
    vm_executor_test $FAULT_SUITES $TRACE_SUITES $STATIC_SUITES \
    $SHARD_SUITES $OVERLOAD_SUITES $CACHE_SUITES $FOLD_SUITES

  echo "== TSan tests =="
  export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
  for t in page_cache_core_test page_space_manager_test \
           prefetch_pipeline_test vm_executor_test \
           $FAULT_SUITES $TRACE_SUITES $STATIC_SUITES $SHARD_SUITES \
           $OVERLOAD_SUITES $CACHE_SUITES $FOLD_SUITES; do
    echo "--- $t ---"
    "build-tsan/tests/$t"
  done
else
  echo "== skipping TSan pass =="
fi

echo "== check OK =="
