// Data Store Manager (§2): dynamic storage for intermediate results with
// semantic metadata.
//
// Each blob is a query result (or sub-query result) annotated with its
// predicate. lookup() implements the system's reuse test: find the resident
// blob whose user-defined overlap with the incoming query is highest.
// Blobs are evicted under a byte budget by a pluggable EvictionRanker
// (LRU by default; see eviction_ranker.hpp); each eviction is reported to
// a listener carrying the blob's predicate, payload, and traced recompute
// cost, so the engines can demote it to the spill tier (SWAPPED_OUT) or
// drop it (DESIGN.md §13).
//
// Sizes are accounted in *logical* bytes (qoutsize) so the discrete-event
// engine — which stores no payloads — sees exactly the same residency
// behaviour as the threaded runtime.
//
// Sharding (DESIGN.md §10): the store is split into N power-of-two shards
// keyed by the hash of a blob's bounding box, each with its own lock (rank
// kDataStoreShard), recency list, R-tree, and budget slice, so inserts and
// lookups from different query threads do not serialize on one mutex. Blob
// ids encode their shard (id - 1 mod N), making every by-id operation a
// single-shard lock. Semantic lookups scan shards one at a time and commit
// the winner under its home shard's lock. The byte budget rebalances
// between slices through an atomic spare pool plus a borrow slow path that
// never holds two shard locks. shards == 1 (the default) reproduces the
// single-lock store byte for byte, including blob-id assignment.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"
#include "datastore/eviction_ranker.hpp"
#include "index/rtree.hpp"
#include "query/predicate.hpp"
#include "query/semantics.hpp"
#include "trace/trace.hpp"

namespace mqs::datastore {

using BlobId = std::uint64_t;

/// Everything an eviction listener needs to decide demote-vs-drop: the
/// payload and cost travel *out* of the store with the eviction, so a spill
/// tier can take ownership without calling back in.
struct EvictedBlob {
  BlobId id = 0;
  query::PredicatePtr predicate;
  std::vector<std::byte> payload;    ///< empty in simulation mode
  std::uint64_t logicalBytes = 0;
  double recomputeCostSec = 0.0;     ///< traced cost attributed at insert
};

class DataStore {
 public:
  /// Upper bound on the shard count (rounded up to a power of two).
  static constexpr int kMaxShards = 256;

  /// `semantics` provides the user-defined overlap operator used by lookup.
  /// `shards` is rounded up to the next power of two (1..kMaxShards).
  DataStore(std::uint64_t capacityBytes, const query::QuerySemantics* semantics,
            EvictionPolicy eviction = EvictionPolicy::Lru, int shards = 1);

  /// Pluggable-ranker constructor: identical store, custom victim scoring
  /// (stats()/logs report the policy as CostAware's name).
  DataStore(std::uint64_t capacityBytes, const query::QuerySemantics* semantics,
            std::unique_ptr<EvictionRanker> ranker, int shards = 1);

  /// Called with each evicted blob — predicate, payload, and recompute cost
  /// move out with it so a spill tier can take ownership. Must not call
  /// back into the data store: the contract is enforced by a debug
  /// reentrancy guard (same build gate as the lock-rank checker) that
  /// aborts on any store entry from inside the listener.
  void setEvictionListener(std::function<void(EvictedBlob)> listener);

  /// Attach a lifecycle tracer: reuse hits (lookup hit / noteReuse), empty
  /// lookups, and evictions emit DS_HIT / DS_MISS / DS_EVICT counters. The
  /// tracer must outlive the store.
  void setTracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Store a result. `payload` may be empty (simulation mode);
  /// `logicalBytes` is the result's qoutsize and drives the byte budget.
  /// Returns the blob id, or std::nullopt if the blob cannot be cached
  /// (larger than the whole store, or everything else is pinned).
  ///
  /// `recomputeCostSec` is the cost to rebuild this result (the CostAware
  /// ranker's metric). The default (-1) takes the inserting query's accrued
  /// COMPUTE/IO_STALL time from the attached tracer's cost ledger
  /// (Tracer::takeThreadQueryCost) when cost accounting is on, else 0;
  /// spill restores pass the blob's original cost back in explicitly.
  std::optional<BlobId> insert(query::PredicatePtr predicate,
                               std::vector<std::byte> payload,
                               std::uint64_t logicalBytes,
                               double recomputeCostSec = -1.0);

  struct Match {
    BlobId id = 0;
    double overlap = 0.0;
  };

  /// Best-overlap resident blob for query predicate `q` with overlap
  /// strictly greater than `minOverlap`. Refreshes the match's LRU
  /// position. Ties break toward the most recently used blob.
  [[nodiscard]] std::optional<Match> lookup(const query::Predicate& q,
                                            double minOverlap = 0.0);

  /// lookup() that atomically pins the match, so concurrent evictions can
  /// never invalidate the returned blob before the caller reads it. The
  /// caller must unpin() when done.
  [[nodiscard]] std::optional<Match> lookupAndPin(const query::Predicate& q,
                                                  double minOverlap = 0.0);

  /// Candidate generation for the multi-source reuse planner: up to `k`
  /// resident blobs with overlap(blob, q) > minOverlap, sorted by overlap
  /// descending (ties toward the newer blob, matching lookup()'s bias
  /// toward recent results). Candidates come from the R-tree, so the cost
  /// is proportional to the spatial matches, not the resident population.
  /// Unlike lookup(), this does NOT refresh LRU positions or hit counters —
  /// the planner reports the sources it actually selects via noteReuse().
  /// Counts one lookup in stats().
  [[nodiscard]] std::vector<Match> lookupTopK(const query::Predicate& q,
                                              std::size_t k,
                                              double minOverlap = 0.0);

  /// Reuse feedback from the planner: refresh the blob's LRU position and
  /// use count, and account a hit (a full hit when `overlap` >= 1). No-op
  /// if the blob was evicted in the meantime.
  void noteReuse(BlobId id, double overlap);

  [[nodiscard]] bool contains(BlobId id) const;

  /// Predicate of a resident blob. The reference is valid while the blob is
  /// pinned (or, single-threadedly, until the next mutating call).
  [[nodiscard]] const query::Predicate& predicate(BlobId id) const;

  /// Recompute cost attributed to a resident blob at insert time (0 when
  /// cost accounting was off). Checks the blob is resident.
  [[nodiscard]] double recomputeCost(BlobId id) const;

  /// Payload bytes of a resident blob (empty span in simulation mode).
  [[nodiscard]] std::span<const std::byte> payload(BlobId id) const;

  /// Pinned blobs are never evicted. Pins nest.
  void pin(BlobId id);
  void unpin(BlobId id);
  /// Pin if still resident; returns whether the pin was taken.
  bool tryPin(BlobId id);

  /// RAII unpin: holds one pin on a blob and releases it on destruction
  /// (exception-safe counterpart to lookupAndPin/tryPin).
  class PinGuard {
   public:
    PinGuard() = default;
    PinGuard(DataStore& ds, BlobId id) : ds_(&ds), id_(id) {}
    PinGuard(PinGuard&& other) noexcept
        : ds_(std::exchange(other.ds_, nullptr)), id_(other.id_) {}
    PinGuard& operator=(PinGuard&& other) noexcept {
      if (this != &other) {
        release();
        ds_ = std::exchange(other.ds_, nullptr);
        id_ = other.id_;
      }
      return *this;
    }
    PinGuard(const PinGuard&) = delete;
    PinGuard& operator=(const PinGuard&) = delete;
    ~PinGuard() { release(); }

    void release() {
      if (ds_ != nullptr) {
        ds_->unpin(id_);
        ds_ = nullptr;
      }
    }
    [[nodiscard]] bool held() const { return ds_ != nullptr; }

   private:
    DataStore* ds_ = nullptr;
    BlobId id_ = 0;
  };

  /// Explicitly drop a blob (used by tests and by administrative paths).
  /// No-op if absent; the eviction listener fires.
  void erase(BlobId id);

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;        ///< lookups that found a usable blob
    std::uint64_t fullHits = 0;    ///< hits with overlap >= 1
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t uncacheable = 0;
  };
  /// Lock-free: all counters are relaxed atomics bumped at the event site,
  /// so polling stats never contends with the query path.
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::uint64_t capacityBytes() const { return capacity_; }
  [[nodiscard]] std::uint64_t residentBytes() const;
  [[nodiscard]] std::size_t residentBlobs() const;
  /// Blobs currently holding at least one pin. Zero once the server is
  /// idle — a positive count then means a leaked PinGuard (soak-test
  /// invariant).
  [[nodiscard]] std::size_t pinnedBlobs() const;
  /// Number of shards the store is split into (a power of two).
  [[nodiscard]] int shardCount() const {
    return static_cast<int>(shards_.size());
  }
  /// Sum of the per-shard budget slices plus the spare pool. Equals
  /// capacityBytes() whenever no budget borrow is mid-flight — the
  /// conservation invariant the shard tests assert at quiescence.
  [[nodiscard]] std::uint64_t budgetAccountedBytes() const;

 private:
  struct Blob {
    query::PredicatePtr predicate;
    std::vector<std::byte> payload;
    std::uint64_t logicalBytes = 0;
    std::uint64_t uses = 0;  ///< lookup hits (LFU / CostAware weight)
    double recomputeCostSec = 0.0;  ///< traced insert-time recompute cost
    int pins = 0;
    std::list<BlobId>::iterator lruIt;
  };

  /// One slice of the store: recency list, blob table, and spatial index
  /// for the blobs homed here, under the shard's own lock. A thread holds
  /// at most one shard lock at a time (equal ranks — the debug checker
  /// aborts on nesting).
  struct Shard {
    Shard(std::size_t idx, std::uint64_t sliceBytes)
        : index(idx), capacity(sliceBytes) {}

    const std::size_t index;  ///< position in shards_ (encoded into ids)
    mutable Mutex mu{lockorder::Rank::kDataStoreShard, "DataStore::Shard::mu"};
    std::uint64_t capacity GUARDED_BY(mu);  ///< this shard's budget slice
    std::uint64_t resident GUARDED_BY(mu) = 0;
    std::uint64_t nextSeq GUARDED_BY(mu) = 0;  ///< per-shard id sequence
    std::list<BlobId> lru GUARDED_BY(mu);      ///< front = most recent
    std::unordered_map<BlobId, Blob> blobs GUARDED_BY(mu);
    index::RTree spatial GUARDED_BY(mu);  ///< bounding boxes -> blob ids
    /// Evictions performed under the lock, drained and reported to the
    /// listener after unlocking (the listener takes the scheduler lock
    /// and may hand the blob to the spill tier).
    std::vector<EvictedBlob> pending GUARDED_BY(mu);
  };

  /// Ids are seq * shardCount + shardIndex + 1, so the home shard is
  /// recoverable from the id alone and shards == 1 yields the historical
  /// dense sequence 1, 2, 3, ...
  [[nodiscard]] Shard& shardOf(BlobId id) const {
    return *shards_[(id - 1) & shardMask_];
  }
  /// Home shard for a new blob: hash of its predicate's bounding box.
  [[nodiscard]] Shard& shardFor(const query::Predicate& predicate) const;

  /// Next eviction victim in `s` under the configured ranker, or 0: the
  /// unpinned blob with the lowest victimScore(), ties toward the LRU end
  /// (recency-only rankers short-circuit to the first unpinned tail blob).
  BlobId pickVictimLocked(const Shard& s) const REQUIRES(s.mu);

  std::optional<Match> lookupImpl(const query::Predicate& q, double minOverlap,
                                  bool pinMatch);
  /// Best strictly-greater-than-`minOverlap` match among `s`'s blobs via
  /// the shard R-tree (plus the !NDEBUG linear cross-check).
  std::optional<Match> scanShardLocked(const Shard& s,
                                       const query::Predicate& q,
                                       double minOverlap) const REQUIRES(s.mu);
  /// Commit a lookup hit: LRU refresh, use count, optional pin, counters.
  void commitHitLocked(Shard& s, BlobId id, double overlap, bool pinMatch)
      REQUIRES(s.mu);

  /// Evict from `s` (policy order) until `need` bytes fit in its slice;
  /// returns false if the shard alone cannot make room.
  bool makeRoomLocked(Shard& s, std::uint64_t need) REQUIRES(s.mu);
  void eraseLocked(Shard& s, BlobId id, bool countEviction) REQUIRES(s.mu);
  /// Budget-rebalance slow path: collect up to `want` bytes from the spare
  /// pool, idle headroom on other shards, and — under global pressure —
  /// policy-order victims on other shards. Locks one shard at a time;
  /// `home` must not be locked by the caller. Donor-shard evictions are
  /// appended to `evicted` for the caller to report once unlocked.
  std::uint64_t borrowBudget(std::uint64_t want, const Shard& home,
                             std::vector<EvictedBlob>& evicted);
  std::uint64_t takeFromSpare(std::uint64_t want);
  /// Fire the eviction listener for drained evictions (no locks held).
  /// While the listener runs, the debug reentrancy guard marks this store
  /// as listener-active for the calling thread; guardReentry() aborts any
  /// re-entry from inside the callback.
  void reportEvictions(std::vector<EvictedBlob>& evicted) EXCLUDES(mu_);
  void guardReentry() const;

  /// Set once before any worker thread exists (QueryServer's constructor
  /// installs it before spawning workers); the pointee synchronizes itself.
  trace::Tracer* tracer_ = nullptr;

  const std::uint64_t capacity_;  ///< total budget across all shards
  const std::unique_ptr<EvictionRanker> ranker_;
  const query::QuerySemantics* semantics_;  ///< immutable after construction

  mutable Mutex mu_{lockorder::Rank::kDataStore, "DataStore::mu_"};
  std::function<void(EvictedBlob)> evictionListener_ GUARDED_BY(mu_);

  /// Immutable after construction (the vector; shard contents are guarded
  /// by their own locks).
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shardMask_ = 0;  ///< immutable after construction
  /// Budget bytes not currently assigned to any shard's slice. Invariant:
  /// sum(shard slices) + spare_ == capacity_ except inside a borrow.
  std::atomic<std::uint64_t> spare_{0};

  // Hot counters: relaxed atomics so stats() and concurrent operations on
  // other shards never serialize on a stats lock.
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> fullHits_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> uncacheable_{0};
};

}  // namespace mqs::datastore
