file(REMOVE_RECURSE
  "CMakeFiles/fig_fairness.dir/fig_fairness.cpp.o"
  "CMakeFiles/fig_fairness.dir/fig_fairness.cpp.o.d"
  "fig_fairness"
  "fig_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
