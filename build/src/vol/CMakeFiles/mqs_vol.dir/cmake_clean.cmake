file(REMOVE_RECURSE
  "CMakeFiles/mqs_vol.dir/synthetic_volume.cpp.o"
  "CMakeFiles/mqs_vol.dir/synthetic_volume.cpp.o.d"
  "CMakeFiles/mqs_vol.dir/vol_executor.cpp.o"
  "CMakeFiles/mqs_vol.dir/vol_executor.cpp.o.d"
  "CMakeFiles/mqs_vol.dir/vol_semantics.cpp.o"
  "CMakeFiles/mqs_vol.dir/vol_semantics.cpp.o.d"
  "CMakeFiles/mqs_vol.dir/volume_layout.cpp.o"
  "CMakeFiles/mqs_vol.dir/volume_layout.cpp.o.d"
  "libmqs_vol.a"
  "libmqs_vol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqs_vol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
