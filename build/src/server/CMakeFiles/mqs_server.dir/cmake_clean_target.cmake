file(REMOVE_RECURSE
  "libmqs_server.a"
)
