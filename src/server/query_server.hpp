// The multithreaded query server (§2, Figure 1) — real execution.
//
// A fixed-size pool of query threads pulls work from the QueryScheduler.
// Each query: (1) asks the shared query::Planner for a ReusePlan over the
// Data Store and the scheduling graph's EXECUTING set, (2) executes the
// plan — projecting cached blobs, blocking on still-executing sources,
// computing remainder sub-queries from raw data through the Page Space
// Manager, (3) caches its own result, (4) delivers bytes to the client
// future. Source selection lives entirely in the planner; this file only
// executes plan steps.
//
// Deadlock avoidance: a query may block on the completion latches of
// EXECUTING queries only if they started earlier (enforced by
// QueryScheduler::executingSources), so wait-for edges always point to
// older executions and the wait graph is acyclic — for any subset of them.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/lock_stats.hpp"
#include "common/thread_annotations.hpp"
#include "datastore/data_store.hpp"
#include "datastore/spill_tier.hpp"
#include "metrics/metrics.hpp"
#include "pagespace/page_space_manager.hpp"
#include "query/executor.hpp"
#include "query/planner.hpp"
#include "sched/scheduler.hpp"
#include "server/admission.hpp"
#include "trace/trace.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs::server {

/// Terminal failure of one query. Carries the original error's message;
/// delivered through the client future (and, over the wire, as a Failed
/// frame). The server itself keeps running — a failed query never takes
/// down a worker thread or wedges the scheduler.
class QueryFailure : public std::runtime_error {
 public:
  explicit QueryFailure(const std::string& what) : std::runtime_error(what) {}
};

/// The server refused the query at admission (DESIGN.md §11): the bounded
/// admission queue was full or the client was over its fairness quota. The
/// query never entered the scheduler and consumed no compute. Over the
/// wire this becomes a Rejected frame carrying the reason discriminator.
class QueryRejected : public std::runtime_error {
 public:
  QueryRejected(RejectReason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}
  [[nodiscard]] RejectReason reason() const { return reason_; }

 private:
  RejectReason reason_;
};

/// The query was admitted but dropped at dispatch because its deadline had
/// already passed (or was predicted to pass) before it consumed compute.
/// Derives from QueryFailure so clients that only distinguish "got bytes"
/// from "query died with a deadline message" keep working; overload-aware
/// clients catch the subtype (the wire maps it to a Rejected frame with
/// reason DeadlineShed).
class QueryShed : public QueryFailure {
 public:
  explicit QueryShed(const std::string& what) : QueryFailure(what) {}
};

struct ServerConfig {
  int threads = 4;
  std::uint64_t dsBytes = 64ULL << 20;
  std::uint64_t psBytes = 32ULL << 20;
  /// Lock shards for the Data Store / Page Space Manager (rounded up to a
  /// power of two; see DESIGN.md §10). 1 = the historical single-lock
  /// behaviour; raise toward the worker-thread count under contention.
  int dsShards = 1;
  int psShards = 1;
  /// Executor readahead window in pages (0 = synchronous fetches); the
  /// real-path mirror of the simulator's `prefetchPages`. Consumed by the
  /// drivers when they construct executors.
  int prefetchPages = 4;
  /// Page Space async I/O pool size (0 disables the pool; prefetch hints
  /// become no-ops and batch fetches degrade to serial reads).
  int psIoThreads = 4;
  /// Device-read retry discipline for transient source faults (see
  /// pagespace::RetryPolicy); attempts = 1 disables retries.
  int ioRetryAttempts = 3;
  double ioRetryBackoffSec = 0.0002;
  /// Per-query deadline measured from arrival, in seconds (0 = none).
  /// Checked at dispatch and at blocking points; a query past its deadline
  /// fails with QueryFailure instead of occupying a thread-pool slot.
  double queryDeadlineSec = 0.0;
  // --- overload behavior (DESIGN.md §11) --------------------------------
  /// Bound on the admission queue (queries submitted but not yet
  /// dispatched). 0 = unbounded (the historical behaviour). When full,
  /// submit() rejects with QueryRejected{QueueFull} instead of queueing.
  std::size_t admissionQueueLimit = 0;
  /// Per-client fairness quotas on queued work: max queries a single
  /// client (id >= 0) may have in the admission queue, and max total
  /// predicted output bytes of those queries. 0 = unlimited. Exceeding
  /// either rejects with QueryRejected{ClientQuota}; anonymous submissions
  /// (client < 0) are exempt.
  int maxQueuedPerClient = 0;
  std::uint64_t maxQueuedBytesPerClient = 0;
  /// Reclassify dispatch-time deadline misses as terminal SHED instead of
  /// FAILED: the query is dropped before consuming compute, the record
  /// gets shed=true (failed stays false), and the future resolves with
  /// QueryShed. Off by default — the historical FAILED classification.
  bool shedDeadlineMisses = false;
  /// With shedDeadlineMisses: also shed queries that have not yet missed
  /// their deadline but are predicted to — elapsed + (EWMA observed
  /// seconds-per-output-byte × outputBytes) past the deadline. Saves the
  /// compute an observed-only policy would waste on doomed queries.
  bool predictiveShedding = false;
  /// Data Store eviction ranker: LRU | LFU | LARGEST | COST. COST scores
  /// victims by traced recompute benefit per byte (DESIGN.md §13); the
  /// server then runs a private cost-accounting tracer even with tracing
  /// off.
  std::string dsEviction = "LRU";
  /// Spill-tier byte budget (0 = no tier, evictions stay terminal). With a
  /// tier, evicted blobs demote to it instead of vanishing, the scheduling
  /// graph retains their nodes as SWAPPED_OUT, and the planner may restore
  /// them (RestoreFromSpill) when that beats recomputing.
  std::uint64_t spillBytes = 0;
  /// Directory for spilled payload files. Empty = keep payloads in memory
  /// (still bounded by spillBytes); set = persist them via a background
  /// writer so demotion never blocks the eviction path.
  std::string spillDir;
  std::string policy = "FIFO";
  double alpha = 0.2;
  bool incrementalRanking = true;
  bool dataStoreEnabled = true;
  bool cacheSubqueryResults = true;
  int maxNestedReuseDepth = 2;
  bool allowWaitOnExecuting = true;
  /// Dynamic query folding (DESIGN.md §14): a query about to compute a
  /// region from raw data registers the scan with the Page Space Manager's
  /// ScanRegistry; queries planned while it is still running may fold into
  /// it (FoldIntoScan) and project from the published payload instead of
  /// scanning and decoding the same pages again. Fold waits obey the same
  /// older-execution rule as waits on executing sources, so the wait graph
  /// stays acyclic. Requires allowWaitOnExecuting.
  bool foldScans = true;
  /// Reuse-plan projection-step budget (query::PlannerConfig); 1 restores
  /// the historic single-best-source behaviour.
  int maxReuseSources = 4;
  /// Optional query-lifecycle trace sink. When set, the server installs its
  /// experiment clock on the tracer and every component on the query path
  /// (scheduler, data store, page space, worker threads) emits span and
  /// counter events into it; drain with trace::Tracer::drain(). When null
  /// (the default), tracing costs one pointer test per site.
  std::shared_ptr<trace::Tracer> traceSink;
};

struct QueryResult {
  std::vector<std::byte> bytes;
  metrics::QueryRecord record;
};

class QueryServer {
 public:
  QueryServer(const query::QuerySemantics* semantics,
              const query::QueryExecutor* executor, ServerConfig cfg);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Attach raw storage for a dataset (before submitting queries on it).
  void attach(storage::DatasetId dataset, const storage::DataSource* source);

  /// Enqueue a query; the future resolves when the result is computed.
  std::future<QueryResult> submit(query::PredicatePtr pred, int client = -1)
      EXCLUDES(mu_);

  /// Blocking convenience (interactive clients).
  QueryResult execute(query::PredicatePtr pred, int client = -1);

  /// Stop accepting queries, finish everything queued, join workers.
  void shutdown() EXCLUDES(mu_);

  [[nodiscard]] const metrics::Collector& collector() const {
    return collector_;
  }
  /// Admission/shedding counters (lock-free snapshot; DESIGN.md §11).
  [[nodiscard]] const AdmissionStats& admission() const { return admission_; }
  [[nodiscard]] const sched::QueryScheduler& scheduler() const {
    return scheduler_;
  }
  [[nodiscard]] const datastore::DataStore& dataStore() const { return ds_; }
  /// The spill tier (null when spillBytes == 0).
  [[nodiscard]] const datastore::SpillTier* spillTier() const {
    return spill_.get();
  }
  [[nodiscard]] pagespace::PageSpaceManager& pageSpace() { return ps_; }
  [[nodiscard]] const ServerConfig& config() const { return cfg_; }

  /// Seconds since server start (the experiment clock).
  [[nodiscard]] double nowSeconds() const;

  /// The attached trace sink (null when tracing is off).
  [[nodiscard]] trace::Tracer* tracer() const { return tracer_; }

 private:
  struct PendingQuery {
    std::promise<QueryResult> promise;
    metrics::QueryRecord record;
  };
  struct DoneLatch {
    std::promise<void> promise;
    std::shared_future<void> future;
    DoneLatch() : future(promise.get_future().share()) {}
  };

  void workerLoop() EXCLUDES(mu_);
  void runQuery(sched::NodeId node, PendingQuery pending);
  /// Plan + execute the top-level query (records the plan's accounting in
  /// `rec`); throws whatever application code throws (runQuery converts
  /// that into a failed client future).
  std::vector<std::byte> computeQuery(sched::NodeId node,
                                      const query::Predicate& pred,
                                      metrics::QueryRecord& rec);
  /// Execute a ReusePlan for `pred` (a whole query or a remainder part at
  /// nesting level `depth`): project each cached/executing source into the
  /// output, compute remainder steps via computePart at depth + 1.
  std::vector<std::byte> executePlan(query::ReusePlan plan,
                                     const query::Predicate& pred, int depth,
                                     metrics::QueryRecord& rec);
  /// Plan + execute one remainder part (depth >= 1) and optionally cache
  /// its result; returns the part's full output buffer.
  std::vector<std::byte> computePart(const query::Predicate& part, int depth,
                                     metrics::QueryRecord& rec);
  std::optional<datastore::BlobId> cacheResult(const query::Predicate& pred,
                                               std::span<const std::byte> out);
  /// Register a shared scan over `pred` with the Page Space Manager's
  /// ScanRegistry when folding is on and this is a depth-0 compute
  /// (DESIGN.md §14); returns an inactive guard otherwise. The guard's
  /// destructor fails the scan if the compute unwinds before publishScan.
  [[nodiscard]] pagespace::ScanRegistry::ScanGuard beginScanIfFolding(
      const query::Predicate& pred, const metrics::QueryRecord& rec,
      int depth);
  /// Publish the computed bytes to the scan's subscribers (no-op for an
  /// inactive guard) and emit the FOLD_SUBSCRIBERS gauge when anybody
  /// actually folded in.
  void publishScan(pagespace::ScanRegistry::ScanGuard& scan,
                   std::span<const std::byte> bytes);
  /// Throws QueryFailure if the query's deadline has passed (no-op when
  /// queryDeadlineSec == 0). Called at dispatch and after blocking waits;
  /// deadlines are cooperative — a query already inside the executor is
  /// not preempted.
  void checkDeadline(const metrics::QueryRecord& rec) const;
  /// Dispatch-time shed decision (shedDeadlineMisses): true when the
  /// query's deadline has passed, or (predictiveShedding) is predicted to
  /// pass before it could finish. Fills `reason` with the shed message.
  [[nodiscard]] bool shouldShed(const metrics::QueryRecord& rec,
                                std::string& reason) const;
  /// Feed one completed query's observed seconds-per-output-byte into the
  /// EWMA behind predictive shedding.
  void noteServiceRate(double secPerByte);
  /// Return a dequeued/settled query's quota charge to its client.
  void releaseClientQuota(const metrics::QueryRecord& rec) REQUIRES(mu_);
  /// Eviction listener: demote the blob to the spill tier (SWAPPED_OUT
  /// retained) or retire its graph node terminally when there is no tier.
  /// Runs with no Data Store locks held; must never call back into ds_
  /// (the listener reentrancy guard aborts if it does).
  void onBlobEvicted(datastore::EvictedBlob blob) EXCLUDES(mu_);
  /// Terminal drop of a spilled entry (FIFO-dropped from the tier or its
  /// restore lost a race): unmap it and retire its graph node.
  void retireSpilledLocked(datastore::SpillId sid) REQUIRES(mu_);
  std::shared_future<void> doneFutureOf(sched::NodeId node) EXCLUDES(mu_);

  const query::QuerySemantics* sem_;   ///< immutable after construction
  const query::QueryExecutor* exec_;   ///< immutable after construction
  ServerConfig cfg_;                   ///< immutable after construction
  sched::QueryScheduler scheduler_;
  datastore::DataStore ds_;
  /// Null when spillBytes == 0; the pointer is set once before the
  /// workers spawn, and the tier synchronizes itself.
  std::unique_ptr<datastore::SpillTier> spill_;
  pagespace::PageSpaceManager ps_;
  query::Planner planner_;  ///< immutable after construction; plan() is const
  metrics::Collector collector_;
  std::chrono::steady_clock::time_point epoch_;  ///< immutable after construction
  /// traceSink or ownedTracer_; set once before the workers spawn.
  trace::Tracer* tracer_ = nullptr;
  /// Private, *disabled* tracer installed when cost-aware eviction or the
  /// spill tier needs per-query recompute-cost accounting but the caller
  /// attached no trace sink: spans on the query path accrue the cost
  /// ledger without buffering any events. Set once before the workers
  /// spawn.
  std::unique_ptr<trace::Tracer> ownedTracer_;
  /// Process-wide lock-contention counters at construction; shutdown emits
  /// the per-run deltas as LOCK_WAIT_* trace counters (lock_stats is
  /// global, so the baseline isolates this server's run).
  lockstats::Counts lockWaitBaseSched_;  ///< immutable after construction
  lockstats::Counts lockWaitBaseDs_;   ///< immutable after construction
  lockstats::Counts lockWaitBasePs_;   ///< immutable after construction

  /// Guards the maps below + dispatch state. Ranked above the scheduler
  /// lock: workers call scheduler_ methods while holding mu_ (dispatch),
  /// so mu_ -> scheduler_.mu_ is the only legal nesting order.
  Mutex mu_{lockorder::Rank::kQueryServer, "QueryServer::mu_"};
  CondVar workAvailable_;
  std::unordered_map<sched::NodeId, PendingQuery> pending_ GUARDED_BY(mu_);
  std::unordered_map<sched::NodeId, std::shared_ptr<DoneLatch>> latches_
      GUARDED_BY(mu_);
  std::unordered_map<sched::NodeId, datastore::BlobId> nodeBlob_
      GUARDED_BY(mu_);
  std::unordered_map<datastore::BlobId, sched::NodeId> blobNode_
      GUARDED_BY(mu_);
  std::unordered_set<sched::NodeId> evictedWhileExecuting_ GUARDED_BY(mu_);
  /// SWAPPED_OUT bookkeeping: which spill entry backs which graph node.
  std::unordered_map<sched::NodeId, datastore::SpillId> nodeSpill_
      GUARDED_BY(mu_);
  std::unordered_map<datastore::SpillId, sched::NodeId> spillNode_
      GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;

  // --- overload behavior (DESIGN.md §11) --------------------------------
  /// A client's outstanding charge against its fairness quota.
  struct ClientQuota {
    int queued = 0;
    std::uint64_t queuedBytes = 0;
  };
  /// Admission-queue depth (submitted, not yet dispatched). Tracked here —
  /// not via scheduler_.waitingCount() — so the bound check and the
  /// counter bump are atomic under one lock.
  std::size_t queuedCount_ GUARDED_BY(mu_) = 0;
  std::unordered_map<int, ClientQuota> clientQuota_ GUARDED_BY(mu_);
  AdmissionStats admission_;
  /// EWMA of observed seconds-per-output-byte over completed queries
  /// (predictive shedding); 0 until the first completion.
  std::atomic<double> ewmaSecPerByte_{0.0};

  std::vector<std::jthread> workers_;
};

}  // namespace mqs::server
