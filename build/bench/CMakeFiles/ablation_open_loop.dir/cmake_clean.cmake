file(REMOVE_RECURSE
  "CMakeFiles/ablation_open_loop.dir/ablation_open_loop.cpp.o"
  "CMakeFiles/ablation_open_loop.dir/ablation_open_loop.cpp.o.d"
  "ablation_open_loop"
  "ablation_open_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_open_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
