#include "loadgen/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace mqs::loadgen {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  MQS_CHECK(n >= 1);
  MQS_CHECK(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it == cdf_.end()
                                      ? cdf_.size() - 1
                                      : it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t rank) const {
  MQS_CHECK(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

namespace {

std::size_t universeOf(const WorkloadConfig& cfg) {
  MQS_CHECK(cfg.regionSide > 0);
  MQS_CHECK_MSG(cfg.slideWidth % cfg.regionSide == 0 &&
                    cfg.slideHeight % cfg.regionSide == 0,
                "regionSide must tile the slide");
  MQS_CHECK(!cfg.zooms.empty());
  for (const std::uint32_t z : cfg.zooms) {
    MQS_CHECK_MSG(z >= 1 && cfg.regionSide % z == 0,
                  "regionSide must be divisible by every zoom");
  }
  const auto tiles = static_cast<std::size_t>(
      (cfg.slideWidth / cfg.regionSide) * (cfg.slideHeight / cfg.regionSide));
  return tiles * cfg.zooms.size();
}

}  // namespace

QueryFactory::QueryFactory(WorkloadConfig cfg)
    : cfg_(std::move(cfg)),
      tileCols_(cfg_.slideWidth / cfg_.regionSide),
      tileRows_(cfg_.slideHeight / cfg_.regionSide),
      zipf_(universeOf(cfg_), cfg_.zipfS) {
  MQS_CHECK(cfg_.averageOpFraction >= 0.0 && cfg_.averageOpFraction <= 1.0);
  perm_.resize(zipf_.size());
  for (std::size_t i = 0; i < perm_.size(); ++i) {
    perm_[i] = static_cast<std::uint32_t>(i);
  }
  // Seeded Fisher–Yates: the permutation (hence the popularity field) is a
  // pure function of the workload seed, independent of the draw stream.
  Rng rng(cfg_.seed);
  for (std::size_t i = perm_.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(i) - 1));
    std::swap(perm_[i - 1], perm_[j]);
  }
}

vm::VMPredicate QueryFactory::make(Rng& rng) const {
  const std::uint32_t idx = perm_[zipf_.sample(rng)];
  const auto tiles = static_cast<std::uint32_t>(tileCols_ * tileRows_);
  const std::uint32_t tile = idx % tiles;
  const std::uint32_t zoom = cfg_.zooms[idx / tiles];
  const std::int64_t x =
      (static_cast<std::int64_t>(tile) % tileCols_) * cfg_.regionSide;
  const std::int64_t y =
      (static_cast<std::int64_t>(tile) / tileCols_) * cfg_.regionSide;
  const vm::VMOp op = rng.bernoulli(cfg_.averageOpFraction)
                          ? vm::VMOp::Average
                          : vm::VMOp::Subsample;
  return vm::VMPredicate(
      cfg_.dataset, Rect::ofSize(x, y, cfg_.regionSide, cfg_.regionSide),
      zoom, op);
}

}  // namespace mqs::loadgen
