// Ablation: dynamic query folding (DESIGN.md §14).
//
// Sweeps overlap fraction x concurrency in the paper's batch mode (§5,
// Figure 7 methodology: the whole workload is submitted at t=0) and runs
// every cell with folding on and off. The Data Store budget is held below
// a single result blob, so waiting on an executing source never pays off
// (the blob is gone by the time the waiter wakes) — the configuration that
// isolates what folding alone contributes: subscribers receive the shared
// scan at the instant of publish instead of re-reading the region.
//
// --smoke runs the guard-rail variant used by the bench_smoke_fold ctest:
// at the high-overlap/high-concurrency cell, folding-on must read strictly
// fewer raw bytes than folding-off, must not degrade trimmed-mean
// response, and FoldIntoScan must be visible end to end — fold hits at the
// scan registry and at least one trace-derived plan shape containing 'F'.
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "trace/analysis.hpp"

using namespace mqs;

namespace {

/// Queries whose trace-derived plan shape folded into a shared scan.
std::uint64_t tracedFoldShapes(const std::vector<trace::Event>& events) {
  std::uint64_t n = 0;
  for (const std::uint64_t qid : trace::queryIds(events)) {
    const std::string shape =
        trace::planShapeOf(trace::eventsForQuery(events, qid));
    if (shape.find('F') != std::string::npos) ++n;
  }
  return n;
}

struct Overlap {
  std::string label;
  double browseProbability;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "fold");
  const bool smoke = ctx.options().getBool("smoke", false);
  ctx.printHeader();

  // Overlap axis: how often a client's next query revisits its previous
  // neighborhood. In batch mode the whole stream is concurrent, so high
  // browse probability means many in-flight queries want the same region
  // at the same instant — the folding window.
  const std::vector<Overlap> overlaps = {{"low", 0.15}, {"high", 0.90}};
  const std::vector<std::int64_t> threads = ctx.options().getIntList(
      "threads", std::vector<std::int64_t>{2, 8});

  // (overlap, threads, fold) -> run, kept for the smoke assertions.
  std::map<std::tuple<std::string, std::int64_t, bool>, driver::SimRunResult>
      runs;
  std::uint64_t smokeTracedF = 0;

  Table table("Dynamic query folding x overlap x concurrency (CF, batch)");
  table.setColumns({"overlap", "threads", "fold", "makespan(s)",
                    "trimmed-response(s)", "scanned(MB)", "reused(MB)",
                    "fold-hits"});
  for (const Overlap& ov : overlaps) {
    driver::WorkloadConfig wl = ctx.workload(vm::VMOp::Subsample);
    wl.browseProbability = ov.browseProbability;
    for (const std::int64_t t : threads) {
      for (const bool fold : {false, true}) {
        // DS label 2 MB is below one result blob at either scale, so the
        // executing-source path degenerates to recompute and the sweep
        // isolates folding; PS label 16 MB is below one scan's working
        // set, so recomputed regions really re-read the device.
        auto cfg = ctx.server("CF", static_cast<int>(t), 2 * MiB, 16 * MiB);
        cfg.foldScans = fold;
        const bool isSmokeCell =
            fold && ov.label == "high" && t == threads.back();
        bool traced = fold && ctx.attachTraceSink(cfg);
        if (smoke && isSmokeCell && cfg.traceSink == nullptr) {
          cfg.traceSink = std::make_shared<trace::Tracer>();
          traced = true;
        }

        auto run = driver::SimExperiment::runBatch(wl, cfg);

        if (traced) {
          const std::uint64_t f = tracedFoldShapes(run.traceEvents);
          if (isSmokeCell) smokeTracedF = f;
          if (ctx.options().has("trace-out")) {
            ctx.writeTraceEvents(run.traceEvents);
          }
        }
        table.addRow(
            {ov.label, std::to_string(t), fold ? "on" : "off",
             formatDouble(run.summary.makespan, 3),
             formatDouble(run.summary.trimmedResponse, 3),
             formatDouble(static_cast<double>(run.io.bytesRead) /
                              static_cast<double>(MiB),
                          2),
             formatDouble(static_cast<double>(run.summary.totalReusedBytes) /
                              static_cast<double>(MiB),
                          2),
             std::to_string(run.scanStats.foldHits)});
        runs.emplace(std::make_tuple(ov.label, t, fold), std::move(run));
      }
    }
  }
  ctx.emit(table);

  if (!smoke) return 0;

  // Guard rails (ISSUE 9 acceptance), at high overlap x max concurrency:
  // folding must strictly reduce raw bytes scanned, must not be worse on
  // trimmed-mean response, and must be visible end to end.
  const std::int64_t t = threads.back();
  const auto& on = runs.at({"high", t, true});
  const auto& off = runs.at({"high", t, false});
  bool ok = true;
  if (on.io.bytesRead >= off.io.bytesRead) {
    std::cerr << "SMOKE FAIL: folding-on scanned " << on.io.bytesRead
              << " B, not strictly below folding-off's " << off.io.bytesRead
              << " B\n";
    ok = false;
  }
  if (on.summary.trimmedResponse > off.summary.trimmedResponse) {
    std::cerr << "SMOKE FAIL: folding-on trimmed response "
              << on.summary.trimmedResponse << " s worse than folding-off's "
              << off.summary.trimmedResponse << " s\n";
    ok = false;
  }
  if (on.scanStats.foldHits == 0) {
    std::cerr << "SMOKE FAIL: no query folded into a shared scan\n";
    ok = false;
  }
  if (off.scanStats.scansRegistered != 0 || off.scanStats.foldHits != 0) {
    std::cerr << "SMOKE FAIL: folding-off touched the scan registry ("
              << off.scanStats.scansRegistered << " scans, "
              << off.scanStats.foldHits << " hits)\n";
    ok = false;
  }
  if (smokeTracedF == 0) {
    std::cerr << "SMOKE FAIL: no trace-derived plan shape contains a "
                 "FoldIntoScan ('F') step\n";
    ok = false;
  }
  if (!ok) return 1;
  std::cout << "# smoke OK: scanned " << off.io.bytesRead << " -> "
            << on.io.bytesRead << " B, trimmed "
            << formatDouble(off.summary.trimmedResponse, 3) << " -> "
            << formatDouble(on.summary.trimmedResponse, 3) << " s, "
            << on.scanStats.foldHits << " fold hits, " << smokeTracedF
            << " queries with 'F' shapes\n";
  return 0;
}
