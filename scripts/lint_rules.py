#!/usr/bin/env python3
"""Project-specific lint rules (the half of the gate clang-tidy can't do).

Rules
-----
R1 naked-sync-primitive
    src/**/*.{hpp,cpp} must not name raw standard synchronization
    primitives (std::mutex, std::lock_guard, ...). All locking goes
    through the annotated wrappers in common/thread_annotations.hpp so
    the Clang thread-safety analysis and the debug lock-rank checker see
    every acquisition. Allowlist: the wrapper shim itself and the
    lock-order checker it is built on.

R2 undated-todo
    TODO/FIXME markers must carry a date: `TODO(YYYY-MM-DD): ...`.
    Undated markers rot; a dated one can be flagged as stale.

R3 unregistered-test
    Every tests/**/*_test.cpp must be registered through an
    mqs_test(...) call in tests/CMakeLists.txt, and that call must carry
    a LABELS argument so scripts/check.sh's label matrix covers it.

R4 unranked-mutex
    Every Mutex declared under src/ must name an explicit
    lockorder::Rank in its initializer. An unranked Mutex is invisible
    to the debug lock-rank checker, so a deadlock it participates in is
    only caught in production. Allowlist: the wrapper shim itself (it
    defines the default constructor the rule bans elsewhere).

R5 unroundtripped-policy-enum
    Every `enum class *Policy` under src/ must ship a parse<Name>() /
    toString(<Name>) pair, and some tests/**/*_test.cpp must exercise
    the parser (R3 guarantees that test is registered). Policy names
    cross the CLI, config structs, and exporters as strings; an enum
    without a tested round-trip grows silently divergent spellings.

R6 unregistered-label
    Every ctest label referenced by scripts/check.sh or
    .github/workflows/ci.yml (a `for label in ...` matrix entry or a
    literal `-L <label>` flag) must be registered by at least one test
    in tests/CMakeLists.txt or bench/CMakeLists.txt. Without
    --no-tests=error, `ctest -L <label>` matching zero tests exits 0,
    so a renamed or never-registered label makes a whole suite group
    silently vanish from the gate; this rule catches the registry side
    of that failure even where the flag is missing.

R7 stale-todo
    A dated TODO/FIXME older than 180 days fails the gate. R2 forces the
    date on; this rule makes the date mean something — markers either
    get resolved or get explicitly re-dated after a fresh look. The
    reference date comes from MQS_LINT_TODAY (YYYY-MM-DD) when set, so
    CI and the self-test are deterministic; otherwise the system clock.

Usage
-----
    lint_rules.py [--repo DIR]     lint the repository (default: cwd's repo)
    lint_rules.py --self-test      seed one violation per rule into a temp
                                   tree and assert each is caught

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import datetime
import os
import pathlib
import re
import sys
import tempfile

NAKED_SYNC_ALLOWLIST = {
    "src/common/thread_annotations.hpp",
    "src/common/lock_order.hpp",
    "src/common/lock_order.cpp",
}

NAKED_SYNC_RE = re.compile(
    r"\bstd::(?:recursive_|shared_|timed_|recursive_timed_)?mutex\b"
    r"|\bstd::condition_variable(?:_any)?\b"
    r"|\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)

TODO_RE = re.compile(r"\b(TODO|FIXME)\b")
DATED_TODO_RE = re.compile(r"\b(?:TODO|FIXME)\(\d{4}-\d{2}-\d{2}\)")
DATED_TODO_CAPTURE_RE = re.compile(r"\b(?:TODO|FIXME)\((\d{4}-\d{2}-\d{2})\)")
STALE_TODO_DAYS = 180

UNRANKED_MUTEX_ALLOWLIST = {
    "src/common/thread_annotations.hpp",
}

# A member/global Mutex declaration: `Mutex name;` or `Mutex name{...};`
# (initializers may span lines). `\bMutex` cannot match MutexLock, and a
# reference/pointer parameter has no trailing `;` after the bare name.
MUTEX_DECL_RE = re.compile(r"\bMutex\s+\w+\s*(\{[^{}]*\})?\s*;")

POLICY_ENUM_RE = re.compile(r"\benum\s+class\s+(\w*Policy)\b")

# R6: label references in the gate scripts — a `for label in a b c; do`
# matrix line, or a literal `-L label` / `-L "label"` flag. Shell
# variables (`-L "$label"`) never match: `$` is not a label character.
LABEL_LIST_RE = re.compile(r"\bfor\s+label\s+in\s+([^;]+);")
LABEL_FLAG_RE = re.compile(r"-L\s+\"?([A-Za-z][\w-]*)\"?")
# Label registrations in the CMake test lists: both mqs_test's
# LABELS "a;b" argument and set_tests_properties(... LABELS "a;b").
CMAKE_LABELS_RE = re.compile(r"\bLABELS\s+\"([^\"]+)\"")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line numbers.

    A lexer-grade pass is overkill; this handles //, /* */, "..." and
    '...' well enough for keyword matching in this codebase.
    """
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | dq | sq
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "dq"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "sq"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # dq / sq
            quote = '"' if state == "dq" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def check_naked_sync(repo: pathlib.Path) -> list[str]:
    findings = []
    for path in sorted((repo / "src").rglob("*")):
        if path.suffix not in (".hpp", ".cpp", ".h", ".cc"):
            continue
        rel = path.relative_to(repo).as_posix()
        if rel in NAKED_SYNC_ALLOWLIST:
            continue
        code = strip_comments_and_strings(path.read_text())
        for lineno, line in enumerate(code.splitlines(), start=1):
            m = NAKED_SYNC_RE.search(line)
            if m:
                findings.append(
                    f"{rel}:{lineno}: naked-sync-primitive: use the annotated "
                    f"wrappers in common/thread_annotations.hpp instead of "
                    f"{m.group(0)}"
                )
    return findings


def check_undated_todos(repo: pathlib.Path) -> list[str]:
    findings = []
    roots = [repo / "src", repo / "tests", repo / "bench", repo / "scripts"]
    for root in roots:
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix not in (".hpp", ".cpp", ".h", ".cc", ".py", ".sh"):
                continue
            if path.resolve() == pathlib.Path(__file__).resolve():
                continue  # this file names the rule's own patterns
            rel = path.relative_to(repo).as_posix()
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if TODO_RE.search(line) and not DATED_TODO_RE.search(line):
                    findings.append(
                        f"{rel}:{lineno}: undated-todo: write "
                        f"TODO(YYYY-MM-DD): so staleness is checkable"
                    )
    return findings


def check_stale_todos(repo: pathlib.Path, today: datetime.date) -> list[str]:
    cutoff = today - datetime.timedelta(days=STALE_TODO_DAYS)
    findings = []
    roots = [repo / "src", repo / "tests", repo / "bench", repo / "scripts"]
    for root in roots:
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix not in (".hpp", ".cpp", ".h", ".cc", ".py", ".sh"):
                continue
            if path.resolve() == pathlib.Path(__file__).resolve():
                continue  # this file names the rule's own patterns
            rel = path.relative_to(repo).as_posix()
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                for m in DATED_TODO_CAPTURE_RE.finditer(line):
                    try:
                        stamped = datetime.date.fromisoformat(m.group(1))
                    except ValueError:
                        stamped = None  # e.g. 2026-13-99; R2 let it through
                    if stamped is None or stamped < cutoff:
                        age = ("unparseable date" if stamped is None else
                               f"{(today - stamped).days} days old")
                    else:
                        continue
                    findings.append(
                        f"{rel}:{lineno}: stale-todo: marker dated "
                        f"{m.group(1)} ({age}, limit {STALE_TODO_DAYS}) — "
                        f"resolve it or re-date it after a fresh look"
                    )
    return findings


def check_test_registration(repo: pathlib.Path) -> list[str]:
    cmake = repo / "tests" / "CMakeLists.txt"
    if not cmake.is_file():
        return ["tests/CMakeLists.txt: unregistered-test: file missing"]
    text = cmake.read_text()
    # Each mqs_test(...) call, with its full argument list.
    calls = re.findall(r"mqs_test\s*\(([^)]*)\)", text)
    registered: dict[str, str] = {}  # source path -> full call args
    for call in calls:
        for src in re.findall(r"[\w/]+_test\.cpp", call):
            registered[src] = call
    findings = []
    for path in sorted((repo / "tests").rglob("*_test.cpp")):
        rel = path.relative_to(repo / "tests").as_posix()
        call = registered.get(rel)
        if call is None:
            findings.append(
                f"tests/{rel}:1: unregistered-test: add an mqs_test(...) "
                f"entry in tests/CMakeLists.txt"
            )
        elif "LABELS" not in call:
            findings.append(
                f"tests/{rel}:1: unregistered-test: its mqs_test(...) entry "
                f"has no LABELS argument (check.sh's label matrix skips it)"
            )
    return findings


def check_unranked_mutexes(repo: pathlib.Path) -> list[str]:
    findings = []
    for path in sorted((repo / "src").rglob("*")):
        if path.suffix not in (".hpp", ".cpp", ".h", ".cc"):
            continue
        rel = path.relative_to(repo).as_posix()
        if rel in UNRANKED_MUTEX_ALLOWLIST:
            continue
        code = strip_comments_and_strings(path.read_text())
        for m in MUTEX_DECL_RE.finditer(code):
            init = m.group(1) or ""
            if "lockorder::Rank::" in init:
                continue
            lineno = code.count("\n", 0, m.start()) + 1
            findings.append(
                f"{rel}:{lineno}: unranked-mutex: give the Mutex an explicit "
                f"lockorder::Rank so the debug lock-rank checker covers it"
            )
    return findings


def check_policy_enum_roundtrip(repo: pathlib.Path) -> list[str]:
    src_code: dict[str, str] = {}
    for path in sorted((repo / "src").rglob("*")):
        if path.suffix not in (".hpp", ".cpp", ".h", ".cc"):
            continue
        rel = path.relative_to(repo).as_posix()
        src_code[rel] = strip_comments_and_strings(path.read_text())
    all_src = "\n".join(src_code.values())
    test_corpus = "\n".join(
        p.read_text() for p in sorted((repo / "tests").rglob("*_test.cpp"))
    )

    findings = []
    for rel, code in src_code.items():
        for m in POLICY_ENUM_RE.finditer(code):
            enum = m.group(1)
            lineno = code.count("\n", 0, m.start()) + 1
            parse_re = re.compile(r"\bparse" + re.escape(enum) + r"\s*\(")
            tostr_re = re.compile(r"\btoString\s*\(\s*" + re.escape(enum)
                                  + r"\b")
            missing = [
                name
                for name, pattern in ((f"parse{enum}()", parse_re),
                                      (f"toString({enum})", tostr_re))
                if not pattern.search(all_src)
            ]
            if missing:
                findings.append(
                    f"{rel}:{lineno}: unroundtripped-policy-enum: declare "
                    f"{' and '.join(missing)} next to the enum so the CLI, "
                    f"configs, and exporters share one spelling set"
                )
            elif not parse_re.search(test_corpus):
                findings.append(
                    f"{rel}:{lineno}: unroundtripped-policy-enum: no "
                    f"tests/**/*_test.cpp exercises parse{enum}() — the "
                    f"name round-trip is untested"
                )
    return findings


def check_label_registration(repo: pathlib.Path) -> list[str]:
    registered: set[str] = set()
    for rel in ("tests/CMakeLists.txt", "bench/CMakeLists.txt"):
        path = repo / rel
        if not path.is_file():
            continue
        for m in CMAKE_LABELS_RE.finditer(path.read_text()):
            for label in m.group(1).split(";"):
                label = label.strip()
                if label and "$" not in label:
                    registered.add(label)

    findings = []
    for rel in ("scripts/check.sh", ".github/workflows/ci.yml"):
        path = repo / rel
        if not path.is_file():
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            refs: list[str] = []
            m = LABEL_LIST_RE.search(line)
            if m:
                refs.extend(m.group(1).split())
            refs.extend(LABEL_FLAG_RE.findall(line))
            for label in refs:
                if "$" in label or label in registered:
                    continue
                findings.append(
                    f"{rel}:{lineno}: unregistered-label: ctest label "
                    f"'{label}' matches no test in tests/ or "
                    f"bench/CMakeLists.txt, so that gate step would run "
                    f"nothing — register the label or drop the reference"
                )
    return findings


def lint_today() -> datetime.date:
    """R7's reference date: MQS_LINT_TODAY (YYYY-MM-DD) or the clock."""
    stamp = os.environ.get("MQS_LINT_TODAY")
    return datetime.date.fromisoformat(stamp) if stamp else datetime.date.today()


def lint(repo: pathlib.Path, today: datetime.date | None = None) -> list[str]:
    return (
        check_naked_sync(repo)
        + check_undated_todos(repo)
        + check_stale_todos(repo, today or lint_today())
        + check_test_registration(repo)
        + check_unranked_mutexes(repo)
        + check_policy_enum_roundtrip(repo)
        + check_label_registration(repo)
    )


def self_test() -> int:
    """Seed one violation per rule and assert the linter catches each."""
    failures = []
    with tempfile.TemporaryDirectory(prefix="mqs-lint-selftest-") as tmp:
        repo = pathlib.Path(tmp)
        (repo / "src" / "common").mkdir(parents=True)
        (repo / "tests" / "scratch").mkdir(parents=True)

        # R1: a naked std::mutex in a scratch source file; the same token in
        # a comment or string must NOT fire.
        (repo / "src" / "scratch.cpp").write_text(
            "// std::mutex in a comment is fine\n"
            'const char* s = "std::mutex in a string is fine";\n'
            "std::mutex naked;  // line 3: the real violation\n"
        )
        # R2: an undated TODO (and a dated one that must pass).
        # R7: a dated marker past the 180-day limit (line 3) against the
        # pinned reference date below; line 1 is fresh and must NOT fire.
        (repo / "src" / "todo.hpp").write_text(
            "// TODO(2026-08-06): dated, fine\n"
            "// TODO: undated, line 2 must fire\n"
            "// TODO(2026-01-01): stale, line 3 must fire\n"
        )
        # R4: an unranked Mutex member; the ranked one (multi-line
        # initializer) must NOT fire.
        (repo / "src" / "ranked.hpp").write_text(
            "struct S {\n"
            "  Mutex good_{lockorder::Rank::kMetrics,\n"
            '              "S::good_"};\n'
            "  Mutex naked_;  // line 4: the real violation\n"
            "};\n"
        )
        # R5: a *Policy enum with no parse/toString pair; the round-tripped
        # one (declared pair + a test referencing the parser) must NOT fire.
        (repo / "src" / "policy_scratch.hpp").write_text(
            "enum class FinePolicy { kA };\n"
            "FinePolicy parseFinePolicy(std::string_view s);\n"
            "const char* toString(FinePolicy p);\n"
            "enum class ScratchPolicy { kA };  // line 4: the real violation\n"
        )
        # R3: a test source with no mqs_test entry, plus one registered
        # without LABELS. The orphan also exercises parseFinePolicy so R5's
        # coverage leg sees FinePolicy as tested.
        (repo / "tests" / "scratch" / "orphan_test.cpp").write_text(
            'int x = sizeof(parseFinePolicy("kA"));\n'
        )
        (repo / "tests" / "scratch" / "bare_test.cpp").write_text("int y;\n")
        (repo / "tests" / "CMakeLists.txt").write_text(
            "mqs_test(bare_test scratch/bare_test.cpp)\n"
            'mqs_test(labeled_test scratch/labeled_test.cpp LABELS "good")\n'
        )
        # R6: the gate's label matrix names one registered label and one
        # ghost; the `-L "$label"` expansion inside the loop must NOT fire.
        (repo / "scripts").mkdir()
        (repo / "scripts" / "check.sh").write_text(
            "#!/usr/bin/env bash\n"
            "for label in good ghost; do\n"
            '  ctest -L "$label" --no-tests=error\n'
            "done\n"
        )

        # Pin R7's reference date: the 2026-08-06 marker is 2 days old
        # (fresh), the 2026-01-01 one is 219 days old (stale).
        findings = lint(repo, today=datetime.date(2026, 8, 8))
        expectations = [
            ("src/scratch.cpp:3", "naked-sync-primitive"),
            ("src/todo.hpp:2", "undated-todo"),
            ("src/todo.hpp:3", "stale-todo"),
            ("tests/scratch/orphan_test.cpp", "unregistered-test"),
            ("tests/scratch/bare_test.cpp", "no LABELS"),
            ("src/ranked.hpp:4", "unranked-mutex"),
            ("src/policy_scratch.hpp:4", "unroundtripped-policy-enum"),
            ("scripts/check.sh:2", "unregistered-label"),
        ]
        for prefix, tag in expectations:
            if not any(prefix in f and tag in f for f in findings):
                failures.append(f"missed seeded violation: {prefix} ({tag})")
        for banned in ("scratch.cpp:1", "scratch.cpp:2",
                       "todo.hpp:1: undated", "todo.hpp:1: stale",
                       "ranked.hpp:2", "ranked.hpp:3", "policy_scratch.hpp:1",
                       "check.sh:3"):
            if any(banned in f for f in findings):
                failures.append(f"false positive on clean line: {banned}")
        if len(findings) != len(expectations):
            failures.append(
                f"expected {len(expectations)} findings, got {len(findings)}: "
                f"{findings}"
            )
    if failures:
        print("lint_rules.py self-test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("lint_rules.py self-test OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent)
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint(args.repo)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_rules.py: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
