// Wire protocol between remote clients and the query server (Figure 1:
// "Client -> Query / Query Result <- Query Server"; the paper's emulated
// clients ran on a PC cluster connected over Fast Ethernet).
//
// Frames are length-prefixed:
//   u32 payloadLength | u8 type | payload
// with types:
//   Query    — u64 requestId | u16 kindLen | kind | predicate bytes
//   Result   — u64 requestId | u64 resultLen | result bytes
//   Error    — u64 requestId | u16 messageLen | message
//   Failed   — u64 requestId | u16 messageLen | message
//   Rejected — u64 requestId | u8 reason | u16 messageLen | message
//
// Error means the request itself was rejected (malformed predicate,
// transport fault); Failed means the server accepted and scheduled the
// query but it reached the terminal FAILED status (device fault past the
// retry budget, deadline exceeded mid-execution). Rejected is the overload
// frame (DESIGN.md §11): the server refused to spend compute on the query —
// either at admission (bounded queue full, per-client quota exceeded) or at
// dispatch (deadline-based shedding). The u8 reason is a
// server::RejectReason discriminator so clients can back off differently
// for "you are over quota" vs "the server is saturated".
//
// Integers are little-endian. Predicate bodies are produced by
// application-registered PredicateCodecs (see codecs.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mqs::net {

enum class FrameType : std::uint8_t {
  Query = 1,
  Result = 2,
  Error = 3,
  Failed = 4,
  Rejected = 5,
};

/// Growing byte sink with little-endian primitive writers.
class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void str(std::string_view s) {
    u16(static_cast<std::uint16_t>(s.size()));
    raw(s.data(), s.size());
  }
  void blob(std::span<const std::byte> b) {
    u64(b.size());
    bytes_.insert(bytes_.end(), b.begin(), b.end());
  }

  [[nodiscard]] const std::vector<std::byte>& bytes() const { return bytes_; }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(bytes_); }

 private:
  void raw(const void* p, std::size_t n);
  std::vector<std::byte> bytes_;
};

/// Bounds-checked little-endian reader; throws CheckFailure on underrun.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<std::byte> blob();

  [[nodiscard]] std::size_t remaining() const {
    return data_.size() - offset_;
  }

 private:
  void raw(void* p, std::size_t n);
  std::span<const std::byte> data_;
  std::size_t offset_ = 0;
};

/// A parsed frame.
struct Frame {
  FrameType type = FrameType::Query;
  std::vector<std::byte> payload;
};

/// Serialize a frame (header + payload).
std::vector<std::byte> packFrame(FrameType type,
                                 std::span<const std::byte> payload);

// --- blocking socket helpers -------------------------------------------

/// Write all bytes to fd; returns false on error/peer close.
bool writeAll(int fd, std::span<const std::byte> data);
/// Read exactly n bytes; returns false on EOF/error.
bool readAll(int fd, std::span<std::byte> out);
/// Read one frame; returns false on clean EOF or error.
bool readFrame(int fd, Frame& out, std::uint32_t maxPayload = 1u << 30);

}  // namespace mqs::net
