// Overload behavior across the wire (DESIGN.md §11): Rejected frames with
// machine-readable reasons, deadline shedding visible end to end (frame,
// QueryRecord, DELIVER[shed] trace flag), per-client quota fairness
// between two live connections, the NetClient stall-timeout regression,
// and the composition of overload with injected device faults.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "loadgen/loadgen.hpp"
#include "net/net_client.hpp"
#include "net/net_server.hpp"
#include "storage/delayed_source.hpp"
#include "storage/faulty_source.hpp"
#include "storage/synthetic_source.hpp"
#include "trace/trace.hpp"
#include "vm/vm_executor.hpp"

namespace mqs::net {
namespace {

using server::AdmissionCounts;
using server::QueryRejected;
using server::RejectReason;
using Outcome = NetClient::Outcome;
using Status = NetClient::Outcome::Status;

constexpr std::uint64_t kSeed = 2002;

std::uint64_t envU64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

class OverloadWireTest : public ::testing::Test {
 protected:
  OverloadWireTest()
      : layout_(1024, 1024, 96),
        slide_(layout_, kSeed),
        slow_(slide_, storage::DiskModel{.seekOverheadSec = 0.002,
                                         .sequentialOverheadSec = 0.002,
                                         .bytesPerSecond = 200.0 * 1024 *
                                                           1024}),
        exec_(&sem_),
        codecs_(CodecRegistry::standard()) {
    dsid_ = sem_.addDataset(layout_);
  }

  /// Bring up the TCP front-end over a configured QueryServer; reads go
  /// through the delay decorator so a pipelining client can always build
  /// a backlog.
  void start(server::ServerConfig cfg,
             const storage::DataSource* source = nullptr) {
    cfg.dsBytes = 1ULL << 20;  // no result-cache shortcuts under flood
    cfg.psBytes = 1ULL << 20;
    queryServer_ =
        std::make_unique<server::QueryServer>(&sem_, &exec_, cfg);
    queryServer_->attach(dsid_, source != nullptr ? source : &slow_);
    netServer_ = std::make_unique<NetServer>(*queryServer_, &codecs_);
  }

  vm::VMPredicate distinctPred(std::size_t i) const {
    const auto x = static_cast<std::int64_t>((i * 128) % 768);
    const auto y = static_cast<std::int64_t>(((i * 128) / 768 * 128) % 768);
    return {dsid_, Rect::ofSize(x, y, 256, 256), 4, vm::VMOp::Subsample};
  }

  index::ChunkLayout layout_;
  storage::SyntheticSlideSource slide_;
  storage::DelayedSource slow_;
  vm::VMSemantics sem_;
  vm::VMExecutor exec_;
  CodecRegistry codecs_;
  storage::DatasetId dsid_ = 0;
  std::unique_ptr<server::QueryServer> queryServer_;
  std::unique_ptr<NetServer> netServer_;
};

TEST_F(OverloadWireTest, RejectedFrameCarriesReasonOverTheWire) {
  server::ServerConfig cfg;
  cfg.threads = 1;
  cfg.admissionQueueLimit = 2;
  start(cfg);

  NetClient client("127.0.0.1", netServer_->port(), &codecs_,
                   NetClientConfig{.connectTimeoutSec = 5.0,
                                   .ioTimeoutSec = 30.0});
  constexpr std::size_t kFlood = 24;
  for (std::size_t i = 0; i < kFlood; ++i) {
    (void)client.send(distinctPred(i));
  }
  std::size_t completed = 0;
  std::size_t rejectedQueueFull = 0;
  for (std::size_t i = 0; i < kFlood; ++i) {
    const Outcome out = client.receiveAny();
    switch (out.status) {
      case Status::Result:
        ++completed;
        break;
      case Status::Rejected:
        EXPECT_EQ(static_cast<RejectReason>(out.rejectReason),
                  RejectReason::QueueFull);
        EXPECT_NE(out.message.find("admission queue full"),
                  std::string::npos);
        ++rejectedQueueFull;
        break;
      default:
        FAIL() << "unexpected frame, message: " << out.message;
    }
  }
  EXPECT_GT(completed, 0u);
  EXPECT_GT(rejectedQueueFull, 0u) << "flood never overflowed the queue";
  EXPECT_EQ(completed + rejectedQueueFull, kFlood);

  // The typed path surfaces the same frame as a QueryRejected exception.
  for (std::size_t i = 0; i < 8; ++i) (void)client.send(distinctPred(i));
  std::size_t thrown = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    try {
      (void)client.receive();
    } catch (const QueryRejected& e) {
      EXPECT_EQ(e.reason(), RejectReason::QueueFull);
      ++thrown;
    }
  }
  EXPECT_GT(thrown, 0u);

  const AdmissionCounts counts = queryServer_->admission().snapshot();
  EXPECT_EQ(counts.offered, counts.settled());
  EXPECT_LE(counts.peakQueueDepth, cfg.admissionQueueLimit);
}

TEST_F(OverloadWireTest, DeadlineShedIsVisibleInFrameRecordAndTrace) {
  server::ServerConfig cfg;
  cfg.threads = 1;
  cfg.queryDeadlineSec = 1e-4;
  cfg.shedDeadlineMisses = true;
  cfg.traceSink = std::make_shared<trace::Tracer>();
  start(cfg);

  NetClient client("127.0.0.1", netServer_->port(), &codecs_,
                   NetClientConfig{.connectTimeoutSec = 5.0,
                                   .ioTimeoutSec = 30.0});
  constexpr std::size_t kFlood = 16;
  for (std::size_t i = 0; i < kFlood; ++i) {
    (void)client.send(distinctPred(i));
  }
  std::size_t shed = 0;
  for (std::size_t i = 0; i < kFlood; ++i) {
    const Outcome out = client.receiveAny();
    if (out.status == Status::Rejected) {
      ASSERT_EQ(static_cast<RejectReason>(out.rejectReason),
                RejectReason::DeadlineShed);
      EXPECT_NE(out.message.find("deadline"), std::string::npos);
      ++shed;
    }
  }
  ASSERT_GT(shed, 0u) << "nothing queued past the deadline";

  // Server-side record: shed, not failed, with the reason preserved.
  std::size_t shedRecords = 0;
  for (const auto& rec : queryServer_->collector().records()) {
    if (rec.shed) {
      ++shedRecords;
      EXPECT_FALSE(rec.failed);
      EXPECT_NE(rec.failureReason.find("deadline"), std::string::npos);
    }
  }
  EXPECT_EQ(shedRecords, shed);
  EXPECT_EQ(queryServer_->admission().snapshot().shedDeadline, shed);

  // Trace: the DELIVER end span carries the shed flag (DELIVER[shed]).
  std::size_t shedDelivers = 0;
  for (const auto& ev : cfg.traceSink->drain()) {
    if (ev.type == trace::EventType::SpanEnd &&
        ev.spanKind() == trace::SpanKind::Deliver &&
        (ev.flags & trace::kFlagShed) != 0) {
      EXPECT_EQ(ev.flags & trace::kFlagFailed, 0)
          << "a shed query must not also be flagged failed";
      ++shedDelivers;
    }
  }
  EXPECT_EQ(shedDelivers, shed);
}

TEST_F(OverloadWireTest, QuotaCapsFloodingConnectionNotThePoliteOne) {
  server::ServerConfig cfg;
  cfg.threads = 1;
  cfg.maxQueuedPerClient = 3;
  start(cfg);

  // Connection A floods; its excess is rejected with ClientQuota.
  NetClient flooder("127.0.0.1", netServer_->port(), &codecs_,
                    NetClientConfig{.connectTimeoutSec = 5.0,
                                    .ioTimeoutSec = 30.0});
  constexpr std::size_t kFlood = 32;
  for (std::size_t i = 0; i < kFlood; ++i) {
    (void)flooder.send(distinctPred(i));
  }

  // Connection B plays fair (one in flight at a time) while A's backlog
  // is still queued: every one of its queries must be admitted.
  NetClient polite("127.0.0.1", netServer_->port(), &codecs_,
                   NetClientConfig{.connectTimeoutSec = 5.0,
                                   .ioTimeoutSec = 30.0});
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NO_THROW((void)polite.execute(distinctPred(100 + i)))
        << "fair client " << i;
  }

  std::size_t quotaRejected = 0;
  for (std::size_t i = 0; i < kFlood; ++i) {
    const Outcome out = flooder.receiveAny();
    if (out.status == Status::Rejected) {
      EXPECT_EQ(static_cast<RejectReason>(out.rejectReason),
                RejectReason::ClientQuota);
      ++quotaRejected;
    }
  }
  EXPECT_GT(quotaRejected, 0u) << "flood never hit its quota";
  const AdmissionCounts counts = queryServer_->admission().snapshot();
  EXPECT_EQ(counts.rejectedQuota, quotaRejected);
  EXPECT_EQ(counts.offered, counts.settled());
}

// Regression (the bug this PR fixes): a server that accepts the TCP
// connection and then never answers used to hang the client forever in
// receive(). With ioTimeoutSec configured the client must surface
// TimeoutError in bounded time instead.
TEST_F(OverloadWireTest, ClientEscapesAcceptThenStallServer) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  // The handshake completes via the backlog; nobody ever reads or writes.
  NetClient client("127.0.0.1", port, &codecs_,
                   NetClientConfig{.connectTimeoutSec = 2.0,
                                   .ioTimeoutSec = 0.3});
  (void)client.send(distinctPred(0));  // buffered by the kernel, fine
  const auto before = std::chrono::steady_clock::now();
  EXPECT_THROW((void)client.receive(), TimeoutError);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    before)
          .count();
  EXPECT_GE(waited, 0.2) << "timed out earlier than configured";
  EXPECT_LT(waited, 5.0) << "timeout fired far too late";
  ::close(listener);
}

// Overload defenses and injected device faults at the same time, through
// the real wire path via the load generator: transient faults inside the
// retry budget stay invisible (no FAILED fates) while admission control
// and shedding keep every conservation law intact.
TEST_F(OverloadWireTest, OverloadComposesWithInjectedFaults) {
  const std::uint64_t seed = envU64("MQS_SOAK_SEED", 20260808);
  storage::FaultPlan plan;
  plan.seed = seed;
  plan.transientRate = 0.1;
  plan.maxConsecutiveTransient = 2;  // < ioRetryAttempts
  plan.burstPeriod = 40;
  plan.burstLen = 8;
  plan.burstTransientRate = 0.5;
  storage::FaultySource faulty(slide_, plan);

  server::ServerConfig cfg;
  cfg.threads = 2;
  cfg.admissionQueueLimit = 8;
  cfg.maxQueuedPerClient = 6;
  cfg.queryDeadlineSec = 0.5;
  cfg.shedDeadlineMisses = true;
  cfg.predictiveShedding = true;
  cfg.ioRetryBackoffSec = 0.0;
  start(cfg, &faulty);

  loadgen::LoadGenConfig lg;
  lg.port = netServer_->port();
  lg.connections = 2;
  lg.durationSec = 1.0;
  lg.arrival.kind = loadgen::ArrivalConfig::Kind::Bursty;
  lg.arrival.ratePerSec = 400.0;
  lg.workload.dataset = dsid_;
  lg.workload.slideWidth = 1024;
  lg.workload.slideHeight = 1024;
  lg.workload.regionSide = 128;
  lg.workload.zooms = {2, 4};
  lg.seed = seed;
  const loadgen::LoadGenReport rep = loadgen::runLoad(lg, &codecs_);

  // Client-side conservation across every fate.
  EXPECT_EQ(rep.offered, rep.completed + rep.failed + rep.rejected() +
                             rep.shedDeadline + rep.errors + rep.timeouts +
                             rep.sendFailures);
  EXPECT_GT(rep.completed, 0u);
  EXPECT_EQ(rep.failed, 0u) << "transient faults leaked through retries";
  EXPECT_EQ(rep.errors, 0u);
  EXPECT_EQ(rep.timeouts, 0u);
  EXPECT_EQ(rep.sendFailures, 0u);

  const AdmissionCounts counts = queryServer_->admission().snapshot();
  EXPECT_EQ(counts.offered, rep.offered);
  EXPECT_EQ(counts.offered, counts.settled());
  EXPECT_LE(counts.peakQueueDepth, cfg.admissionQueueLimit);

  // The soak is only meaningful if both stressors actually fired.
  EXPECT_GT(faulty.stats().transientInjected, 0u)
      << "fault plan injected nothing";

  // Drained to idle with no leaks, same bar as the fault soak.
  EXPECT_EQ(queryServer_->scheduler().waitingCount(), 0u);
  EXPECT_EQ(queryServer_->scheduler().executingCount(), 0u);
  EXPECT_EQ(queryServer_->pageSpace().claimCount(), 0u);
  EXPECT_EQ(queryServer_->dataStore().pinnedBlobs(), 0u);
}

}  // namespace
}  // namespace mqs::net
