#include "net/net_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>

#include "common/check.hpp"
#include "server/query_server.hpp"

namespace mqs::net {

NetClient::NetClient(const std::string& host, std::uint16_t port,
                     const CodecRegistry* codecs)
    : codecs_(codecs) {
  MQS_CHECK(codecs_ != nullptr);
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  MQS_CHECK_MSG(fd_ >= 0, "cannot create client socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  MQS_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                "bad host address: " + host);
  MQS_CHECK_MSG(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                          sizeof addr) == 0,
                "cannot connect to query server");
}

NetClient::~NetClient() { close(); }

void NetClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t NetClient::send(const query::Predicate& pred) {
  const std::uint64_t id = nextId_++;
  Writer w;
  w.u64(id);
  codecs_->encode(pred, w);
  if (!writeAll(fd_, packFrame(FrameType::Query, w.bytes()))) {
    throw std::runtime_error("query server connection lost on send");
  }
  return id;
}

NetClient::Response NetClient::receive() {
  Frame frame;
  if (!readFrame(fd_, frame)) {
    throw std::runtime_error("query server connection lost on receive");
  }
  Reader r(frame.payload);
  Response resp;
  resp.requestId = r.u64();
  if (frame.type == FrameType::Failed) {
    // The server accepted the query but it reached the terminal FAILED
    // status (device fault, deadline); rethrow as the same type local
    // callers of QueryServer::execute would see.
    throw server::QueryFailure(r.str());
  }
  if (frame.type == FrameType::Error) {
    throw std::runtime_error("remote query failed: " + r.str());
  }
  MQS_CHECK_MSG(frame.type == FrameType::Result, "unexpected frame type");
  resp.bytes = r.blob();
  return resp;
}

std::vector<std::byte> NetClient::execute(const query::Predicate& pred) {
  const std::uint64_t id = send(pred);
  Response resp = receive();
  MQS_CHECK_MSG(resp.requestId == id, "response out of order");
  return std::move(resp.bytes);
}

}  // namespace mqs::net
