# Empty compiler generated dependencies file for mqs_metrics.
# This may be replaced when dependencies are built.
