#include "sched/graph.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "vm/vm_predicate.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs::sched {
namespace {

using vm::VMOp;
using vm::VMPredicate;

class GraphTest : public ::testing::Test {
 protected:
  GraphTest() {
    (void)sem_.addDataset(index::ChunkLayout(8192, 8192, 128));
    graph_ = std::make_unique<SchedulingGraph>(&sem_);
  }

  query::PredicatePtr pred(Rect r, std::uint32_t zoom,
                           VMOp op = VMOp::Subsample) {
    return std::make_unique<VMPredicate>(0, r, zoom, op);
  }

  vm::VMSemantics sem_;
  std::unique_ptr<SchedulingGraph> graph_;
};

TEST_F(GraphTest, InsertSetsWaitingStateAndSizes) {
  const NodeId n = graph_->insert(pred(Rect::ofSize(0, 0, 512, 512), 4));
  EXPECT_EQ(graph_->state(n), QueryState::Waiting);
  EXPECT_EQ(graph_->qoutsize(n), 128u * 128 * 3);
  EXPECT_GT(graph_->qinputsize(n), 0u);
  EXPECT_EQ(graph_->arrivalSeq(n), 1u);
  EXPECT_EQ(graph_->size(), 1u);
  EXPECT_TRUE(graph_->checkInvariants());
}

TEST_F(GraphTest, OverlappingQueriesGetBidirectionalEdges) {
  const NodeId a = graph_->insert(pred(Rect::ofSize(0, 0, 512, 512), 4));
  const NodeId b = graph_->insert(pred(Rect::ofSize(256, 0, 512, 512), 4));
  // Same zoom, half overlap each way.
  ASSERT_EQ(graph_->outEdges(a).size(), 1u);
  ASSERT_EQ(graph_->inEdges(a).size(), 1u);
  const Edge& ab = graph_->outEdges(a)[0];
  EXPECT_EQ(ab.peer, b);
  EXPECT_DOUBLE_EQ(ab.overlap, 0.5);
  // w(a, b) = overlap(a, b) * qoutsize(a).
  EXPECT_DOUBLE_EQ(ab.weight, 0.5 * 128 * 128 * 3);
  EXPECT_TRUE(graph_->checkInvariants());
}

TEST_F(GraphTest, NonInvertibleTransformGetsOneDirection) {
  const NodeId hi = graph_->insert(pred(Rect::ofSize(0, 0, 512, 512), 2));
  const NodeId lo = graph_->insert(pred(Rect::ofSize(0, 0, 512, 512), 4));
  // hi (zoom 2) can produce lo (zoom 4) but not vice versa: e(hi, lo) only.
  ASSERT_EQ(graph_->outEdges(hi).size(), 1u);
  EXPECT_EQ(graph_->outEdges(hi)[0].peer, lo);
  EXPECT_TRUE(graph_->outEdges(lo).empty());
  EXPECT_TRUE(graph_->inEdges(hi).empty());
  ASSERT_EQ(graph_->inEdges(lo).size(), 1u);
  EXPECT_EQ(graph_->inEdges(lo)[0].peer, hi);
}

TEST_F(GraphTest, DisjointQueriesHaveNoEdges) {
  const NodeId a = graph_->insert(pred(Rect::ofSize(0, 0, 128, 128), 4));
  const NodeId b = graph_->insert(pred(Rect::ofSize(4096, 4096, 128, 128), 4));
  EXPECT_TRUE(graph_->outEdges(a).empty());
  EXPECT_TRUE(graph_->outEdges(b).empty());
  EXPECT_EQ(graph_->edgeCount(), 0u);
}

TEST_F(GraphTest, StateTransitions) {
  const NodeId n = graph_->insert(pred(Rect::ofSize(0, 0, 128, 128), 4));
  graph_->setState(n, QueryState::Executing);
  EXPECT_EQ(graph_->state(n), QueryState::Executing);
  graph_->setState(n, QueryState::Cached);
  EXPECT_EQ(graph_->state(n), QueryState::Cached);
}

TEST_F(GraphTest, RemoveDropsAllIncidentEdges) {
  const NodeId a = graph_->insert(pred(Rect::ofSize(0, 0, 512, 512), 4));
  const NodeId b = graph_->insert(pred(Rect::ofSize(256, 0, 512, 512), 4));
  const NodeId c = graph_->insert(pred(Rect::ofSize(0, 256, 512, 512), 4));
  EXPECT_GT(graph_->edgeCount(), 0u);
  graph_->remove(a);
  EXPECT_FALSE(graph_->contains(a));
  for (const Edge& e : graph_->inEdges(b)) EXPECT_NE(e.peer, a);
  for (const Edge& e : graph_->outEdges(b)) EXPECT_NE(e.peer, a);
  for (const Edge& e : graph_->inEdges(c)) EXPECT_NE(e.peer, a);
  EXPECT_TRUE(graph_->checkInvariants());
}

TEST_F(GraphTest, RemoveExecutingForbidden) {
  const NodeId n = graph_->insert(pred(Rect::ofSize(0, 0, 128, 128), 4));
  graph_->setState(n, QueryState::Executing);
  EXPECT_THROW(graph_->remove(n), CheckFailure);
}

TEST_F(GraphTest, NeighborsDeduplicated) {
  const NodeId a = graph_->insert(pred(Rect::ofSize(0, 0, 512, 512), 4));
  const NodeId b = graph_->insert(pred(Rect::ofSize(256, 0, 512, 512), 4));
  // a and b share edges in both directions; neighbors must list b once.
  EXPECT_EQ(graph_->neighbors(a), std::vector<NodeId>{b});
}

TEST_F(GraphTest, UnknownNodeThrows) {
  EXPECT_THROW((void)graph_->state(999), CheckFailure);
  EXPECT_THROW(graph_->remove(999), CheckFailure);
}

TEST_F(GraphTest, ArrivalSequenceIsMonotone) {
  const NodeId a = graph_->insert(pred(Rect::ofSize(0, 0, 128, 128), 4));
  const NodeId b = graph_->insert(pred(Rect::ofSize(128, 0, 128, 128), 4));
  EXPECT_LT(graph_->arrivalSeq(a), graph_->arrivalSeq(b));
}

TEST_F(GraphTest, WriteDotRendersFigure3Style) {
  const NodeId a = graph_->insert(pred(Rect::ofSize(0, 0, 512, 512), 4));
  const NodeId b = graph_->insert(pred(Rect::ofSize(256, 0, 512, 512), 4));
  graph_->setState(a, QueryState::Executing);
  graph_->setState(b, QueryState::Cached);
  std::ostringstream os;
  graph_->writeDot(os);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph scheduling_graph"), std::string::npos);
  EXPECT_NE(dot.find("q1 -> q2"), std::string::npos);
  EXPECT_NE(dot.find("q2 -> q1"), std::string::npos);
  EXPECT_NE(dot.find("EXECUTING"), std::string::npos);
  EXPECT_NE(dot.find("CACHED"), std::string::npos);
  EXPECT_NE(dot.find("0.50"), std::string::npos);  // overlap label
}

/// Property: random inserts/removals keep the graph structurally sound and
/// edge weights consistent with the semantics.
TEST_F(GraphTest, PropertyRandomChurn) {
  Rng rng(55);
  std::vector<NodeId> live;
  for (int step = 0; step < 400; ++step) {
    if (rng.uniform01() < 0.65 || live.empty()) {
      const std::uint32_t zoom = 1u << rng.uniformInt(0, 3);
      const std::int64_t side = static_cast<std::int64_t>(zoom) * 64;
      auto snap = [&](std::int64_t v) { return (v / 32) * 32; };
      const Rect r = Rect::ofSize(snap(rng.uniformInt(0, 4000)),
                                  snap(rng.uniformInt(0, 4000)), side, side);
      live.push_back(graph_->insert(pred(r, zoom)));
    } else {
      const auto idx = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      graph_->remove(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    if (step % 50 == 0) {
      ASSERT_TRUE(graph_->checkInvariants()) << "step " << step;
    }
  }
  EXPECT_TRUE(graph_->checkInvariants());
  EXPECT_EQ(graph_->size(), live.size());

  // Every edge weight must equal overlap * qoutsize(source).
  graph_->forEachNode([&](NodeId n) {
    for (const Edge& e : graph_->outEdges(n)) {
      const double expect =
          sem_.overlap(graph_->predicate(n), graph_->predicate(e.peer)) *
          static_cast<double>(graph_->qoutsize(n));
      EXPECT_DOUBLE_EQ(e.weight, expect);
    }
  });
}

}  // namespace
}  // namespace mqs::sched
