# Empty dependencies file for queue_pool_test.
# This may be replaced when dependencies are built.
