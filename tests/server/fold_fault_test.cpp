// Fold-under-fault property (DESIGN.md §14 failure contract): a device
// fault inside a shared scan must fail the owner's query and either fail
// every subscriber (their own regions hit the same fault on replan) or let
// them replan and succeed independently — a subscriber is NEVER left
// hanging on an abandoned scan, and never inherits a failure its own
// region does not deserve. The conservation invariant across seeds:
// offered == completed + failed, with every future settled.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/query_server.hpp"
#include "storage/faulty_source.hpp"
#include "storage/synthetic_source.hpp"
#include "vm/image.hpp"
#include "vm/vm_executor.hpp"

namespace mqs::server {
namespace {

using storage::FaultPlan;
using storage::FaultySource;
using vm::ImageRGB;
using vm::VMOp;
using vm::VMPredicate;

constexpr std::uint64_t kSeed = 99;

class FoldFaultTest : public ::testing::Test {
 protected:
  FoldFaultTest()
      : layout_(1024, 1024, 96), slide_(layout_, kSeed), exec_(&sem_) {
    dsid_ = sem_.addDataset(layout_);
  }

  ServerConfig config(int threads = 4) {
    ServerConfig cfg;
    cfg.threads = threads;
    cfg.policy = "FIFO";
    cfg.dsBytes = 2ULL << 20;  // tight: folding is the main sharing channel
    cfg.psBytes = 2ULL << 20;
    cfg.foldScans = true;
    return cfg;
  }

  std::unique_ptr<QueryServer> makeServer(ServerConfig cfg,
                                          const storage::DataSource& src) {
    auto server = std::make_unique<QueryServer>(&sem_, &exec_, cfg);
    server->attach(dsid_, &src);
    return server;
  }

  void expectCorrect(const VMPredicate& q, const QueryResult& result) const {
    const ImageRGB got =
        ImageRGB::fromBytes(result.bytes, q.outWidth(), q.outHeight());
    EXPECT_EQ(maxAbsDiff(got, renderReference(q, kSeed)), 0) << q.describe();
  }

  /// A chunk id whose rect intersects `region` (to poison it).
  storage::PageId chunkIn(const Rect& region) const {
    const auto chunks = layout_.chunksIntersecting(region);
    EXPECT_FALSE(chunks.empty());
    return chunks.front().id;
  }

  /// Wait (bounded) until the owner has registered its shared scan, so a
  /// query submitted next deterministically sees the fold candidate.
  static void awaitActiveScan(QueryServer& server) {
    for (int i = 0; i < 2000; ++i) {
      if (server.pageSpace().scanRegistry().activeScans() > 0) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  index::ChunkLayout layout_;
  storage::SyntheticSlideSource slide_;
  vm::VMSemantics sem_;
  vm::VMExecutor exec_;
  storage::DatasetId dsid_ = 0;
};

TEST_F(FoldFaultTest, FailedSharedScanFailsSubscribersWhoseRegionIsPoisoned) {
  // The poisoned chunk sits at the END of the owner's scan order and every
  // read pays a latency spike, so the scan stays Running long enough for
  // the second identical query to fold into it. The owner fails; the
  // subscriber replans its covered parts, hits the same permanent fault,
  // and fails independently — same terminal fate, no hang.
  const VMPredicate q(dsid_, Rect::ofSize(0, 0, 384, 384), 4, VMOp::Subsample);
  FaultPlan plan;
  const auto chunks = layout_.chunksIntersecting(q.region());
  ASSERT_GT(chunks.size(), 1u);
  plan.permanentPages = {chunks.back().id};
  plan.latencySpikeRate = 1.0;
  plan.latencySpikeSec = 0.002;
  FaultySource faulty(slide_, plan);
  auto server = makeServer(config(/*threads=*/2), faulty);

  auto owner = server->submit(q.clone(), 0);
  awaitActiveScan(*server);
  auto subscriber = server->submit(q.clone(), 1);

  EXPECT_THROW((void)owner.get(), QueryFailure);
  EXPECT_THROW((void)subscriber.get(), QueryFailure);

  // Both settled terminally; the scheduler holds nothing back.
  const auto counts = server->admission().snapshot();
  EXPECT_EQ(counts.offered, 2u);
  EXPECT_EQ(counts.completed + counts.failed, counts.offered);
  EXPECT_EQ(server->scheduler().waitingCount(), 0u);
  EXPECT_EQ(server->scheduler().executingCount(), 0u);

  // No scan left Running: the failing owner resolved it (guard fail or
  // unwind), so later queries can never block on it.
  EXPECT_EQ(server->pageSpace().scanRegistry().activeScans(), 0u);

  // The same server still serves the healthy region, byte-perfect.
  const VMPredicate good(dsid_, Rect::ofSize(512, 512, 256, 256), 4,
                         VMOp::Subsample);
  expectCorrect(good, server->execute(good.clone(), 2));
}

TEST_F(FoldFaultTest, SubscriberWithHealthyRegionReplansAndSucceeds) {
  // A chunk LATE in the owner's scan order is poisoned (so the shared scan
  // stays Running long enough to fold into), but the overlapping
  // subscriber's own region avoids it. Whether the subscriber joined the
  // scan before it failed or found it already settled, the §14 contract
  // demands the same outcome: it replans its share from raw data and
  // delivers byte-perfect results while the owner fails.
  const VMPredicate owner(dsid_, Rect::ofSize(0, 0, 384, 384), 4,
                          VMOp::Subsample);
  const VMPredicate sub(dsid_, Rect::ofSize(192, 192, 192, 192), 4,
                        VMOp::Subsample);
  FaultPlan plan;
  plan.permanentPages = {chunkIn(Rect::ofSize(0, 288, 96, 96))};
  plan.latencySpikeRate = 1.0;
  plan.latencySpikeSec = 0.002;
  FaultySource faulty(slide_, plan);
  auto server = makeServer(config(/*threads=*/2), faulty);

  auto ownerFuture = server->submit(owner.clone(), 0);
  awaitActiveScan(*server);
  auto subFuture = server->submit(sub.clone(), 1);

  EXPECT_THROW((void)ownerFuture.get(), QueryFailure);
  expectCorrect(sub, subFuture.get());

  const auto counts = server->admission().snapshot();
  EXPECT_EQ(counts.offered, 2u);
  EXPECT_EQ(counts.completed, 1u);
  EXPECT_EQ(counts.failed, 1u);
  EXPECT_EQ(server->pageSpace().scanRegistry().activeScans(), 0u);
}

TEST_F(FoldFaultTest, ConservationHoldsAcrossSeedsWithFoldingOnAndOff) {
  // Property sweep: randomized fault streams over an overlapping batch.
  // Each query's terminal fate is determined by its own region against the
  // permanent fault set — folding must not change WHO fails, only how the
  // survivors share scans. Every future settles (offered == completed +
  // failed) under both configurations, and the per-query outcomes match.
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    std::vector<std::vector<bool>> failedByConfig;
    for (const bool foldScans : {true, false}) {
      FaultPlan plan;
      plan.seed = seed;
      plan.permanentPages = {chunkIn(Rect::ofSize(0, 0, 96, 96)),
                             chunkIn(Rect::ofSize(480, 480, 96, 96))};
      plan.transientRate = 0.1;  // absorbed by retries, adds timing noise
      plan.maxConsecutiveTransient = 2;
      FaultySource faulty(slide_, plan);
      ServerConfig cfg = config(/*threads=*/4);
      cfg.foldScans = foldScans;
      cfg.ioRetryBackoffSec = 0.0;
      auto server = makeServer(cfg, faulty);

      // Overlapping grid batch: neighbors share most of their input.
      std::vector<VMPredicate> queries;
      for (int i = 0; i < 12; ++i) {
        queries.emplace_back(
            dsid_,
            Rect::ofSize((i % 4) * 128, (i / 4) * 128, 256, 256), 4,
            VMOp::Subsample);
      }
      std::vector<std::future<QueryResult>> futures;
      futures.reserve(queries.size());
      for (std::size_t i = 0; i < queries.size(); ++i) {
        futures.push_back(
            server->submit(queries[i].clone(), static_cast<int>(i)));
      }
      std::vector<bool> failed;
      for (std::size_t i = 0; i < futures.size(); ++i) {
        try {
          const auto result = futures[i].get();
          expectCorrect(queries[i], result);
          failed.push_back(false);
        } catch (const QueryFailure&) {
          failed.push_back(true);
        }
      }
      const auto counts = server->admission().snapshot();
      EXPECT_EQ(counts.offered, queries.size());
      EXPECT_EQ(counts.completed + counts.failed, counts.offered)
          << "seed " << seed << " fold=" << foldScans;
      EXPECT_EQ(server->pageSpace().scanRegistry().activeScans(), 0u);
      failedByConfig.push_back(std::move(failed));
    }
    // Folding never changes a query's terminal fate.
    EXPECT_EQ(failedByConfig[0], failedByConfig[1]) << "seed " << seed;
  }
}

TEST_F(FoldFaultTest, TransientFaultsUnderFoldingStayByteCorrect) {
  FaultPlan plan;
  plan.seed = 7;
  plan.transientRate = 0.3;
  plan.maxConsecutiveTransient = 2;  // < default ioRetryAttempts (3)
  FaultySource faulty(slide_, plan);
  ServerConfig cfg = config(/*threads=*/4);
  cfg.ioRetryBackoffSec = 0.0;
  auto server = makeServer(cfg, faulty);

  std::vector<VMPredicate> queries;
  for (int i = 0; i < 8; ++i) {
    queries.emplace_back(dsid_, Rect::ofSize((i % 2) * 192, (i / 2) * 96,
                                             384, 384),
                         4, VMOp::Subsample);
  }
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    futures.push_back(
        server->submit(queries[i].clone(), static_cast<int>(i)));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    expectCorrect(queries[i], futures[i].get());
  }
  EXPECT_GT(faulty.stats().transientInjected, 0u);
  EXPECT_EQ(server->pageSpace().stats().readFailures, 0u);
  EXPECT_EQ(server->pageSpace().scanRegistry().activeScans(), 0u);
}

}  // namespace
}  // namespace mqs::server
