// Trace and metrics exporters.
//
// Two consumer-facing formats:
//
//  * Chrome trace_event JSON (catapult format) — load the file in
//    chrome://tracing or https://ui.perfetto.dev. Query spans are emitted
//    as async events ("b"/"e", id = query id) so a span that starts on the
//    submitting thread and ends on a worker renders as one track; counters
//    are emitted as cumulative "C" events. Output is byte-stable for a
//    fixed event stream (fixed-point timestamps, deterministic ordering),
//    which the golden test relies on.
//
//  * Flat per-query CSV / JSON over metrics::QueryRecord — one row per
//    query with the full lifecycle accounting. RFC-4180 quoting (predicates
//    may contain commas/quotes); the benches and scripts/reproduce.sh
//    consume the JSON form for machine-readable BENCH_* summaries.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/metrics.hpp"
#include "trace/trace.hpp"

namespace mqs::trace {

/// Write the event stream as Chrome trace_event JSON. Every emitted record
/// carries the required `ph`, `ts`, `pid`, `tid`, `name` fields; `ts` is in
/// microseconds with fixed 3-decimal formatting.
void exportChromeTrace(std::ostream& os, const std::vector<Event>& events);

/// File convenience; returns success.
bool writeChromeTrace(const std::string& path,
                      const std::vector<Event>& events);

/// One row per query record, RFC-4180-quoted, with a header row.
void exportQueryCsv(std::ostream& os,
                    const std::vector<metrics::QueryRecord>& records);
bool writeQueryCsv(const std::string& path,
                   const std::vector<metrics::QueryRecord>& records);

/// JSON array of per-query objects (same fields as the CSV columns).
void exportQueryJson(std::ostream& os,
                     const std::vector<metrics::QueryRecord>& records);

/// Run-level summary as a JSON object (the BENCH_*.json building block).
[[nodiscard]] std::string summaryJson(const metrics::Summary& summary);

/// Quote one CSV field per RFC 4180 (quotes doubled; field wrapped in
/// quotes when it contains a comma, quote, or newline). Exposed for the
/// exporter fuzz test.
[[nodiscard]] std::string csvQuote(const std::string& field);

/// Escape a string for embedding in a JSON string literal (quotes added).
[[nodiscard]] std::string jsonQuote(const std::string& s);

}  // namespace mqs::trace
