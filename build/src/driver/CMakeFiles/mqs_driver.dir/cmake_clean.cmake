file(REMOVE_RECURSE
  "CMakeFiles/mqs_driver.dir/server_experiment.cpp.o"
  "CMakeFiles/mqs_driver.dir/server_experiment.cpp.o.d"
  "CMakeFiles/mqs_driver.dir/sim_experiment.cpp.o"
  "CMakeFiles/mqs_driver.dir/sim_experiment.cpp.o.d"
  "CMakeFiles/mqs_driver.dir/trace.cpp.o"
  "CMakeFiles/mqs_driver.dir/trace.cpp.o.d"
  "CMakeFiles/mqs_driver.dir/workload.cpp.o"
  "CMakeFiles/mqs_driver.dir/workload.cpp.o.d"
  "libmqs_driver.a"
  "libmqs_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqs_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
