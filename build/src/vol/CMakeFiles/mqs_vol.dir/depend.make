# Empty dependencies file for mqs_vol.
# This may be replaced when dependencies are built.
