# Empty compiler generated dependencies file for mqs_common.
# This may be replaced when dependencies are built.
