#include "driver/trace.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "common/check.hpp"

namespace mqs::driver {

void writeTrace(std::ostream& os,
                const std::vector<ClientWorkload>& workloads) {
  os << "# mqs-trace v1: client dataset x0 y0 width height zoom op\n";
  for (const ClientWorkload& wl : workloads) {
    for (const vm::VMPredicate& q : wl.queries) {
      os << wl.client << ' ' << q.dataset() << ' ' << q.region().x0 << ' '
         << q.region().y0 << ' ' << q.region().width() << ' '
         << q.region().height() << ' ' << q.zoom() << ' '
         << toString(q.op()) << '\n';
    }
  }
}

std::vector<ClientWorkload> readTrace(std::istream& is) {
  // Preserve per-client query order; clients ordered by first appearance.
  std::vector<ClientWorkload> out;
  std::map<int, std::size_t> indexOf;
  std::string line;
  int lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    int client = 0;
    storage::DatasetId dataset = 0;
    std::int64_t x0 = 0, y0 = 0, w = 0, h = 0;
    std::uint32_t zoom = 0;
    std::string op;
    if (!(ls >> client)) continue;  // blank / comment-only line
    MQS_CHECK_MSG(
        static_cast<bool>(ls >> dataset >> x0 >> y0 >> w >> h >> zoom >> op),
        "malformed trace line " + std::to_string(lineNo));
    MQS_CHECK_MSG(op == "subsample" || op == "average",
                  "unknown op in trace line " + std::to_string(lineNo));
    const vm::VMOp vmop =
        op == "subsample" ? vm::VMOp::Subsample : vm::VMOp::Average;

    auto [it, inserted] = indexOf.try_emplace(client, out.size());
    if (inserted) {
      out.push_back(ClientWorkload{client, dataset, {}});
    }
    ClientWorkload& wl = out[it->second];
    MQS_CHECK_MSG(wl.dataset == dataset,
                  "client switches dataset at trace line " +
                      std::to_string(lineNo));
    wl.queries.emplace_back(dataset, Rect::ofSize(x0, y0, w, h), zoom, vmop);
  }
  return out;
}

bool saveTrace(const std::filesystem::path& path,
               const std::vector<ClientWorkload>& workloads) {
  std::ofstream out(path);
  if (!out) return false;
  writeTrace(out, workloads);
  return static_cast<bool>(out);
}

std::vector<ClientWorkload> loadTrace(const std::filesystem::path& path) {
  std::ifstream in(path);
  MQS_CHECK_MSG(static_cast<bool>(in), "cannot open trace " + path.string());
  return readTrace(in);
}

}  // namespace mqs::driver
