// Tests for the asynchronous fetch pipeline: prefetch claims, coalescing
// with blocking fetches, batch fetch failure handling, and the eviction
// guarantee for claimed pages.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "index/chunk_layout.hpp"
#include "pagespace/page_space_manager.hpp"
#include "pagespace/readahead.hpp"
#include "storage/synthetic_source.hpp"

namespace mqs::pagespace {
namespace {

using storage::PageKey;

/// Wraps a source, counting device reads and optionally stalling them so
/// tests can provoke concurrent fetches of the same page.
class CountingSource final : public storage::DataSource {
 public:
  explicit CountingSource(const storage::DataSource& inner,
                          std::chrono::milliseconds delay = {})
      : inner_(inner), delay_(delay) {}

  [[nodiscard]] storage::PageId pageCount() const override {
    return inner_.pageCount();
  }
  [[nodiscard]] std::size_t pageBytes(storage::PageId p) const override {
    return inner_.pageBytes(p);
  }
  void readPage(storage::PageId p, std::span<std::byte> out) const override {
    ++reads_;
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    inner_.readPage(p, out);
  }

  [[nodiscard]] int reads() const { return reads_.load(); }

 private:
  const storage::DataSource& inner_;
  std::chrono::milliseconds delay_;
  mutable std::atomic<int> reads_{0};
};

/// A source whose every read fails.
class FailingSource final : public storage::DataSource {
 public:
  explicit FailingSource(const storage::DataSource& inner) : inner_(inner) {}

  [[nodiscard]] storage::PageId pageCount() const override {
    return inner_.pageCount();
  }
  [[nodiscard]] std::size_t pageBytes(storage::PageId p) const override {
    return inner_.pageBytes(p);
  }
  void readPage(storage::PageId, std::span<std::byte>) const override {
    throw std::runtime_error("device error");
  }

 private:
  const storage::DataSource& inner_;
};

void waitForIdle(const PageSpaceManager& ps) {
  while (ps.inflightCount() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

class PrefetchPipelineTest : public ::testing::Test {
 protected:
  PrefetchPipelineTest()
      : layout_(256, 256, 64), slide_(layout_, /*seed=*/9) {}

  index::ChunkLayout layout_;
  storage::SyntheticSlideSource slide_;
};

TEST_F(PrefetchPipelineTest, PrefetchCoalescesWithBlockingFetch) {
  CountingSource slow(slide_, std::chrono::milliseconds(25));
  PageSpaceManager ps(1 << 20);
  ps.attach(0, &slow);

  // prefetch() registers the in-flight read before returning, so the
  // demand fetch below is guaranteed to merge onto it.
  ps.prefetch(PageKey{0, 2});
  const auto page = ps.fetch(PageKey{0, 2});
  ASSERT_EQ(page->size(), layout_.chunkBytes(2));
  EXPECT_EQ(static_cast<std::uint8_t>((*page)[0]),
            storage::syntheticPixel(9, layout_.chunkRect(2).x0,
                                    layout_.chunkRect(2).y0, 0));

  EXPECT_EQ(slow.reads(), 1);  // one device read for both requests
  const auto s = ps.stats();
  EXPECT_EQ(s.merged, 1u);
  EXPECT_EQ(s.misses, 0u);  // demand miss was absorbed by the prefetch
  EXPECT_EQ(s.prefetchIssued, 1u);
  EXPECT_EQ(s.prefetchHits, 1u);
  EXPECT_EQ(s.prefetchWasted, 0u);
  EXPECT_EQ(ps.claimCount(), 0u);  // claim consumed by the fetch
}

TEST_F(PrefetchPipelineTest, PrefetchedButUnusedIsAccountedWasted) {
  CountingSource counting(slide_);
  PageSpaceManager ps(1 << 20);
  ps.attach(0, &counting);

  ps.prefetch(PageKey{0, 4});
  waitForIdle(ps);
  ps.releaseClaim(PageKey{0, 4});

  EXPECT_EQ(counting.reads(), 1);
  const auto s = ps.stats();
  EXPECT_EQ(s.prefetchIssued, 1u);
  EXPECT_EQ(s.prefetchHits, 0u);
  EXPECT_EQ(s.prefetchWasted, 1u);
  EXPECT_EQ(ps.claimCount(), 0u);

  // The page is no longer pinned: a later fetch is a plain resident hit.
  (void)ps.fetch(PageKey{0, 4});
  EXPECT_EQ(counting.reads(), 1);
  EXPECT_EQ(ps.stats().hits, 1u);
}

TEST_F(PrefetchPipelineTest, FetchBatchFailurePropagatesWithoutLeaks) {
  FailingSource failing(slide_);
  PageSpaceManager ps(1 << 20);
  ps.attach(0, &failing);

  const std::vector<PageKey> keys = {
      PageKey{0, 0}, PageKey{0, 1}, PageKey{0, 2}, PageKey{0, 3}};
  EXPECT_THROW((void)ps.fetchBatch(keys), std::runtime_error);

  waitForIdle(ps);
  EXPECT_EQ(ps.inflightCount(), 0u);  // no leaked in-flight entries
  EXPECT_EQ(ps.claimCount(), 0u);     // no leaked prefetch claims

  // A re-fetch must attempt a fresh read and fail again — not hang on a
  // stale in-flight entry.
  EXPECT_THROW((void)ps.fetch(PageKey{0, 0}), std::runtime_error);
}

TEST_F(PrefetchPipelineTest, FetchBatchReturnsPagesInOrder) {
  CountingSource counting(slide_);
  PageSpaceManager ps(1 << 20);
  ps.attach(0, &counting);

  const std::vector<PageKey> keys = {PageKey{0, 3}, PageKey{0, 0},
                                     PageKey{0, 7}};
  const auto pages = ps.fetchBatch(keys);
  ASSERT_EQ(pages.size(), keys.size());
  EXPECT_EQ(counting.reads(), 3);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const Rect r = layout_.chunkRect(keys[i].page);
    EXPECT_EQ(static_cast<std::uint8_t>((*pages[i])[0]),
              storage::syntheticPixel(9, r.x0, r.y0, 0));
  }
  EXPECT_EQ(ps.claimCount(), 0u);
}

TEST_F(PrefetchPipelineTest, EvictionNeverDropsClaimedPage) {
  CountingSource counting(slide_);
  // Budget for roughly one page only.
  PageSpaceManager ps(layout_.chunkBytes(0) + 10);
  ps.attach(0, &counting);

  ps.prefetch(PageKey{0, 0});
  waitForIdle(ps);

  // These fetches would each evict the previous resident page, but the
  // claim pins page 0 so it must survive all of them.
  (void)ps.fetch(PageKey{0, 1});
  (void)ps.fetch(PageKey{0, 2});
  (void)ps.fetch(PageKey{0, 3});
  EXPECT_EQ(counting.reads(), 4);

  // Page 0 is still resident: consuming the claim costs no device read.
  (void)ps.fetch(PageKey{0, 0});
  EXPECT_EQ(counting.reads(), 4);
  const auto s = ps.stats();
  EXPECT_EQ(s.prefetchHits, 1u);
  EXPECT_EQ(ps.claimCount(), 0u);
}

TEST_F(PrefetchPipelineTest, ReadaheadStreamScansEveryChunkCorrectly) {
  CountingSource counting(slide_);
  PageSpaceManager ps(1 << 22);
  ps.attach(0, &counting);

  std::vector<PageKey> keys;
  for (storage::PageId p = 0; p < layout_.chunkCount(); ++p) {
    keys.push_back(PageKey{0, p});
  }
  ReadaheadStream stream(ps, keys, /*window=*/3);
  std::size_t i = 0;
  while (!stream.done()) {
    const auto page = stream.next();
    const Rect r = layout_.chunkRect(keys[i].page);
    ASSERT_EQ(page->size(), layout_.chunkBytes(keys[i].page));
    EXPECT_EQ(static_cast<std::uint8_t>((*page)[0]),
              storage::syntheticPixel(9, r.x0, r.y0, 0));
    ++i;
  }
  EXPECT_EQ(i, keys.size());
  EXPECT_EQ(counting.reads(), static_cast<int>(keys.size()));
  EXPECT_EQ(ps.claimCount(), 0u);
  EXPECT_EQ(ps.stats().prefetchWasted, 0u);
}

TEST_F(PrefetchPipelineTest, AbandonedStreamReleasesItsClaims) {
  CountingSource counting(slide_);
  PageSpaceManager ps(1 << 22);
  ps.attach(0, &counting);

  std::vector<PageKey> keys;
  for (storage::PageId p = 0; p < 8; ++p) keys.push_back(PageKey{0, p});
  {
    ReadaheadStream stream(ps, keys, /*window=*/4);
    (void)stream.next();
    (void)stream.next();
  }  // destroyed mid-scan: outstanding claims must be released
  waitForIdle(ps);
  EXPECT_EQ(ps.claimCount(), 0u);
  EXPECT_GE(ps.stats().prefetchWasted, 1u);
}

}  // namespace
}  // namespace mqs::pagespace
