# Empty compiler generated dependencies file for mqs_net.
# This may be replaced when dependencies are built.
