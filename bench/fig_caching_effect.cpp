// E1 (§5, text): the effect of caching intermediate results on FIFO and
// SJF — strategies that do not consult the cache when ranking. The paper
// reports overall performance improvements of up to ~35%/70% (FIFO) and
// ~40%/70% (SJF) for the subsampling/averaging implementations, growing
// with the Data Store size.
#include "bench_common.hpp"

using namespace mqs;

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "fig_caching");
  ctx.printHeader();

  const auto dsMb = ctx.options().getIntList("dsmem", {32, 64, 128});

  for (const vm::VMOp op : {vm::VMOp::Subsample, vm::VMOp::Average}) {
    Table table(std::string("Caching effect — batch total time (s) with DS off/on, ") +
                bench::opName(op));
    table.setColumns({"policy", "DS(MB)", "cache-off", "cache-on",
                      "improvement%"});

    for (const std::string policy : {"FIFO", "SJF"}) {
      auto offCfg = ctx.server(policy, 4, 64 * MiB, 32 * MiB);
      offCfg.dataStoreEnabled = false;
      const auto off =
          driver::SimExperiment::runBatch(ctx.workload(op), offCfg);

      for (const auto mb : dsMb) {
        const auto on = driver::SimExperiment::runBatch(
            ctx.workload(op),
            ctx.server(policy, 4, static_cast<std::uint64_t>(mb) * MiB,
                       32 * MiB));
        const double gain = 100.0 *
                            (off.summary.makespan - on.summary.makespan) /
                            off.summary.makespan;
        table.addRow({policy, std::to_string(mb),
                      formatDouble(off.summary.makespan, 2),
                      formatDouble(on.summary.makespan, 2),
                      formatDouble(gain, 1)});
      }
    }
    ctx.emit(table);
  }
  return 0;
}
