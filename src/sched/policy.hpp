// Ranking strategies (§4). A policy maps a WAITING node to a scalar rank;
// the scheduler always dequeues the highest-ranked waiting query (ties break
// by arrival order, i.e. every policy degenerates to FIFO on its ties).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sched/graph.hpp"
#include "sched/state.hpp"

namespace mqs::sched {

class RankingPolicy {
 public:
  virtual ~RankingPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Rank of WAITING node `n`; higher runs sooner.
  [[nodiscard]] virtual double rank(const SchedulingGraph& g,
                                    NodeId n) const = 0;

  /// False for policies (FIFO, SJF) whose ranks never change after
  /// insertion — the scheduler then skips neighborhood re-ranking.
  [[nodiscard]] virtual bool ranksDependOnGraph() const { return true; }

  /// True for self-tuning policies whose ranks shift with the feedback
  /// below; the scheduler then re-ranks all waiting queries when feedback
  /// arrives.
  [[nodiscard]] virtual bool ranksDependOnFeedback() const { return false; }

  /// Feedback hooks (invoked under the scheduler lock). The runtime reports
  /// each finished query's achieved Eq.-2 overlap, and — where available —
  /// a normalized I/O-congestion signal (§6 future work: "incorporation of
  /// low level metrics ... into the query scheduling model").
  virtual void onQueryOutcome(double achievedOverlap) {
    (void)achievedOverlap;
  }
  virtual void onResourceSignal(double ioCongestion) { (void)ioCongestion; }
};

using PolicyPtr = std::unique_ptr<RankingPolicy>;

/// Factory for the paper's six strategies plus extensions: "FIFO", "MUF",
/// "FF", "CF", "CNBF", "SJF", "COMBINED", "ADAPTIVE" (case-insensitive).
/// `alpha` is CF's hand-tuned weight for still-executing dependencies
/// (the paper fixes 0.2 in the experiments) and the executing-source
/// discount of COMBINED/ADAPTIVE. Throws CheckFailure naming the valid
/// set for unknown names.
PolicyPtr makePolicy(std::string_view name, double alpha = 0.2);

/// The six strategies evaluated in the paper, in presentation order.
const std::vector<std::string>& paperPolicyNames();

/// Paper policies plus extensions (COMBINED, ADAPTIVE).
const std::vector<std::string>& allPolicyNames();

}  // namespace mqs::sched
