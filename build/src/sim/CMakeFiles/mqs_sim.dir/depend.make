# Empty dependencies file for mqs_sim.
# This may be replaced when dependencies are built.
