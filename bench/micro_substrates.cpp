// A4 micro-benchmarks: the substrates under the scheduler — geometry,
// R-tree, page-cache core, data-store lookup, VM operators.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "datastore/data_store.hpp"
#include "index/rtree.hpp"
#include "pagespace/page_cache_core.hpp"
#include "pagespace/page_space_manager.hpp"
#include "storage/synthetic_source.hpp"
#include "vm/vm_executor.hpp"

namespace {

using namespace mqs;

void BM_RectSubtract(benchmark::State& state) {
  Rng rng(1);
  const Rect r = Rect::ofSize(0, 0, 1000, 1000);
  for (auto _ : state) {
    const Rect hole =
        Rect::ofSize(rng.uniformInt(0, 900), rng.uniformInt(0, 900), 100, 100);
    benchmark::DoNotOptimize(r.subtract(hole));
  }
}
BENCHMARK(BM_RectSubtract);

void BM_RTreeInsertErase(benchmark::State& state) {
  Rng rng(2);
  index::RTree tree;
  std::vector<std::pair<Rect, std::uint64_t>> entries;
  std::uint64_t id = 0;
  for (auto _ : state) {
    const Rect r = Rect::ofSize(rng.uniformInt(0, 30000),
                                rng.uniformInt(0, 30000), 512, 512);
    tree.insert(r, id);
    entries.emplace_back(r, id);
    ++id;
    if (entries.size() > 512) {
      tree.erase(entries.front().first, entries.front().second);
      entries.erase(entries.begin());
    }
  }
}
BENCHMARK(BM_RTreeInsertErase);

void BM_RTreeQuery(benchmark::State& state) {
  Rng rng(3);
  index::RTree tree;
  for (std::uint64_t i = 0; i < 1024; ++i) {
    tree.insert(Rect::ofSize(rng.uniformInt(0, 30000),
                             rng.uniformInt(0, 30000), 1024, 1024),
                i);
  }
  for (auto _ : state) {
    const Rect q = Rect::ofSize(rng.uniformInt(0, 28000),
                                rng.uniformInt(0, 28000), 2048, 2048);
    std::size_t hits = 0;
    tree.queryIntersecting(q,
                           [&](const Rect&, std::uint64_t) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_RTreeQuery);

void BM_PageCacheTouchInsert(benchmark::State& state) {
  pagespace::PageCacheCore cache(32ULL << 20);
  Rng rng(4);
  for (auto _ : state) {
    const storage::PageKey key{0,
                               static_cast<std::uint64_t>(rng.uniformInt(0, 2000))};
    if (!cache.touch(key)) {
      benchmark::DoNotOptimize(cache.insert(key, 64 * 1024));
    }
  }
}
BENCHMARK(BM_PageCacheTouchInsert);

void BM_DataStoreLookup(benchmark::State& state) {
  static vm::VMSemantics sem = [] {
    vm::VMSemantics s;
    (void)s.addDataset(index::ChunkLayout(30000, 30000, 146));
    return s;
  }();
  datastore::DataStore ds(1ULL << 32, &sem);
  Rng rng(5);
  auto randomPred = [&] {
    const std::uint32_t zoom = 1u << rng.uniformInt(1, 4);
    const std::int64_t side = static_cast<std::int64_t>(zoom) * 256;
    auto snap = [&](std::int64_t v) { return (v / 32) * 32; };
    return std::make_unique<vm::VMPredicate>(
        0,
        Rect::ofSize(snap(rng.uniformInt(0, 20000)),
                     snap(rng.uniformInt(0, 20000)), side, side),
        zoom, vm::VMOp::Subsample);
  };
  for (int i = 0; i < 512; ++i) {
    auto p = randomPred();
    const auto bytes = sem.qoutsize(*p);
    (void)ds.insert(std::move(p), {}, bytes);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.lookup(*randomPred()));
  }
}
BENCHMARK(BM_DataStoreLookup);

void BM_TrimmedMean(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> xs;
  for (int i = 0; i < 4096; ++i) xs.push_back(rng.uniform01());
  for (auto _ : state) {
    benchmark::DoNotOptimize(trimmedMean95(xs));
  }
}
BENCHMARK(BM_TrimmedMean);

void BM_VMExecute(benchmark::State& state) {
  const bool average = state.range(0) == 1;
  static vm::VMSemantics sem = [] {
    vm::VMSemantics s;
    (void)s.addDataset(index::ChunkLayout(2048, 2048, 146));
    return s;
  }();
  static storage::SyntheticSlideSource slide(sem.layout(0), 1);
  static pagespace::PageSpaceManager ps(64ULL << 20);
  static bool attached = [] {
    ps.attach(0, &slide);
    return true;
  }();
  (void)attached;
  vm::VMExecutor exec(&sem);
  const vm::VMPredicate q(0, Rect::ofSize(0, 0, 1024, 1024), 4,
                          average ? vm::VMOp::Average : vm::VMOp::Subsample);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.execute(q, ps));
  }
  state.SetBytesProcessed(state.iterations() * 1024 * 1024 * 3);
}
BENCHMARK(BM_VMExecute)->Arg(0)->Arg(1);

void BM_SyntheticPixel(benchmark::State& state) {
  std::int64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::syntheticPixel(7, x, x + 1, 0));
    ++x;
  }
}
BENCHMARK(BM_SyntheticPixel);

}  // namespace
