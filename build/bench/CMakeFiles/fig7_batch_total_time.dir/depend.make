# Empty dependencies file for fig7_batch_total_time.
# This may be replaced when dependencies are built.
