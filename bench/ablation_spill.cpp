// Ablation: cost-aware caching and the disk spill tier (DESIGN.md §13).
//
// Compares three Data Store configurations under cache pressure on a
// zipf-skewed pixel-averaging workload (recompute is expensive and
// *asymmetric*: input bytes grow with zoom^2 while every cached output is
// the same size, so blobs differ widely in recompute benefit per byte):
//
//   LRU        — recency eviction, evictions terminal (the seed behaviour)
//   COST       — cost-aware eviction: victims ranked by traced recompute
//                benefit per byte, evictions still terminal
//   COST+SPILL — cost-aware eviction plus the spill tier: evicted blobs
//                demote to a modeled disk tier (SWAPPED_OUT) and come back
//                through RestoreFromSpill plan steps when a later query
//                overlaps them and the restore undercuts recompute
//
// --smoke runs the guard-rail variant used by the bench_smoke_spill ctest:
// it asserts COST+SPILL strictly increases total reused bytes over LRU
// without degrading trimmed-mean response, and that RestoreFromSpill is
// actually exercised — at least one trace-derived plan shape contains 'S'.
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "trace/analysis.hpp"

using namespace mqs;

namespace {

/// Queries whose trace-derived plan shape used a spilled source.
std::uint64_t tracedSpillShapes(const std::vector<trace::Event>& events) {
  std::uint64_t n = 0;
  for (const std::uint64_t qid : trace::queryIds(events)) {
    const std::string shape =
        trace::planShapeOf(trace::eventsForQuery(events, qid));
    if (shape.find('S') != std::string::npos) ++n;
  }
  return n;
}

struct Variant {
  std::string label;
  std::string eviction;
  bool spill = false;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "spill");
  const bool smoke = ctx.options().getBool("smoke", false);
  ctx.printHeader();

  // Skewed reuse profile: clients mostly jump between shared hotspots
  // (browseProbability 0.25) whose popularity follows zipf(1.1) over 8
  // features, and pixel averaging makes a recompute ~20x the CPU of a
  // subsampling query at the same zoom.
  driver::WorkloadConfig wl = ctx.workload(vm::VMOp::Average);
  wl.browseProbability = 0.25;
  wl.hotspotsPerDataset = 8;
  wl.hotspotZipfS = 1.1;

  // Small DS budgets force evictions; the spill tier gets a deliberately
  // generous budget so the comparison isolates *policy*, not tier sizing.
  const std::vector<std::int64_t> dsMb =
      ctx.options().getIntList("dsmem", smoke ? std::vector<std::int64_t>{8}
                                              : std::vector<std::int64_t>{8, 16});
  const auto spillMb =
      static_cast<std::uint64_t>(ctx.options().getInt("spillmem", 256));

  const std::vector<Variant> variants = {
      {"LRU", "LRU", false},
      {"COST", "COST", false},
      {"COST+SPILL", "COST", true},
  };

  // (dsMb, label) -> run, kept for the smoke assertions after the sweep.
  std::map<std::pair<std::int64_t, std::string>, driver::SimRunResult> runs;
  std::uint64_t smokeTracedS = 0;

  Table table("Cost-aware eviction and spill tier (CF scheduling), " +
              std::string(bench::opName(vm::VMOp::Average)));
  table.setColumns({"variant", "DS(MB)", "trimmed-response(s)", "reused(MB)",
                    "evictions", "demoted", "spill-restores", "restored-nodes"});
  for (const auto mb : dsMb) {
    for (const Variant& v : variants) {
      auto cfg = ctx.server("CF", 4, static_cast<std::uint64_t>(mb) * MiB,
                            32 * MiB);
      cfg.dsEviction = v.eviction;
      if (v.spill) cfg.spillBytes = ctx.scaleBytes(spillMb * MiB);
      // Trace the spill variant when asked (--trace-out) — and always in
      // smoke mode, where the 'S'-shape assertion needs the events. The
      // short-circuit keeps the one-shot sink for the spill run.
      bool traced = v.spill && ctx.attachTraceSink(cfg);
      if (smoke && v.spill && cfg.traceSink == nullptr) {
        cfg.traceSink = std::make_shared<trace::Tracer>();
        traced = true;
      }

      auto run = driver::SimExperiment::runInteractive(wl, cfg);

      if (traced && v.spill) {
        const std::uint64_t s = tracedSpillShapes(run.traceEvents);
        if (smoke && mb == dsMb.front()) smokeTracedS = s;
        if (ctx.options().has("trace-out")) ctx.writeTraceEvents(run.traceEvents);
      }
      table.addRow({v.label, std::to_string(mb),
                    formatDouble(run.summary.trimmedResponse, 3),
                    formatDouble(static_cast<double>(
                                     run.summary.totalReusedBytes) /
                                     static_cast<double>(MiB),
                                 2),
                    std::to_string(run.dsStats.evictions),
                    std::to_string(run.spillStats.demoted),
                    std::to_string(run.spillStats.restored),
                    std::to_string(run.schedStats.restoredCount)});
      runs.emplace(std::make_pair(mb, v.label), std::move(run));
    }
  }
  ctx.emit(table);

  if (!smoke) return 0;

  // Guard rails (ISSUE 8 acceptance): at the tightest budget, COST+SPILL
  // must strictly beat LRU on bytes reused, must not be worse on
  // trimmed-mean response, and must visibly execute RestoreFromSpill.
  const auto mb = dsMb.front();
  const auto& lru = runs.at({mb, "LRU"});
  const auto& spill = runs.at({mb, "COST+SPILL"});
  bool ok = true;
  if (spill.summary.totalReusedBytes <= lru.summary.totalReusedBytes) {
    std::cerr << "SMOKE FAIL: COST+SPILL reused "
              << spill.summary.totalReusedBytes << " B, not strictly above LRU's "
              << lru.summary.totalReusedBytes << " B\n";
    ok = false;
  }
  if (spill.summary.trimmedResponse > lru.summary.trimmedResponse) {
    std::cerr << "SMOKE FAIL: COST+SPILL trimmed response "
              << spill.summary.trimmedResponse << " s worse than LRU's "
              << lru.summary.trimmedResponse << " s\n";
    ok = false;
  }
  if (spill.schedStats.restoredCount == 0) {
    std::cerr << "SMOKE FAIL: no SWAPPED_OUT -> CACHED restores happened\n";
    ok = false;
  }
  if (smokeTracedS == 0) {
    std::cerr << "SMOKE FAIL: no trace-derived plan shape contains a "
                 "RestoreFromSpill ('S') step\n";
    ok = false;
  }
  if (!ok) return 1;
  std::cout << "# smoke OK: reused " << lru.summary.totalReusedBytes << " -> "
            << spill.summary.totalReusedBytes << " B, trimmed "
            << formatDouble(lru.summary.trimmedResponse, 3) << " -> "
            << formatDouble(spill.summary.trimmedResponse, 3) << " s, "
            << spill.schedStats.restoredCount << " restores, " << smokeTracedS
            << " queries with 'S' shapes\n";
  return 0;
}
