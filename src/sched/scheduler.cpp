#include "sched/scheduler.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mqs::sched {

QueryScheduler::QueryScheduler(const query::QuerySemantics* semantics,
                               PolicyPtr policy, bool incremental)
    : graph_(semantics), policy_(std::move(policy)), incremental_(incremental) {
  MQS_CHECK(policy_ != nullptr);
}

void QueryScheduler::rerankLocked(NodeId n) {
  NodeRt& rt = rt_[n];
  ++rt.version;
  if (graph_.state(n) != QueryState::Waiting) return;
  ++stats_.rankEvaluations;
  const double r = policy_->rank(graph_, n);
  heap_.push(HeapEntry{r, graph_.arrivalSeq(n), rt.version, n});
}

void QueryScheduler::rerankNeighborsLocked(NodeId n) {
  for (NodeId k : graph_.neighbors(n)) {
    if (graph_.state(k) == QueryState::Waiting) rerankLocked(k);
  }
}

void QueryScheduler::rerankAllWaitingLocked() {
  graph_.forEachNode([&](NodeId k) {
    if (graph_.state(k) == QueryState::Waiting) rerankLocked(k);
  });
}

void QueryScheduler::afterEventLocked(NodeId n) {
  if (!policy_->ranksDependOnGraph()) return;
  if (incremental_) {
    rerankNeighborsLocked(n);
  } else {
    rerankAllWaitingLocked();
  }
}

void QueryScheduler::drainFeedbackLocked(const FeedbackEvent* extra) {
  bool any = false;
  FeedbackEvent ev;
  while (feedback_.tryPop(ev)) {
    switch (ev.kind) {
      case FeedbackEvent::Kind::Outcome:
        policy_->onQueryOutcome(ev.value);
        break;
      case FeedbackEvent::Kind::Resource:
        policy_->onResourceSignal(ev.value);
        break;
    }
    any = true;
  }
  if (extra != nullptr) {
    switch (extra->kind) {
      case FeedbackEvent::Kind::Outcome:
        policy_->onQueryOutcome(extra->value);
        break;
      case FeedbackEvent::Kind::Resource:
        policy_->onResourceSignal(extra->value);
        break;
    }
    any = true;
  }
  // The batching win: one rerank per drained batch, not one per report.
  if (any && policy_->ranksDependOnFeedback()) rerankAllWaitingLocked();
}

NodeId QueryScheduler::submit(query::PredicatePtr predicate) {
  MutexLock lock(mu_);
  drainFeedbackLocked();
  const NodeId n = graph_.insert(std::move(predicate));
  ++stats_.submitted;
  ++waiting_;
  rt_.emplace(n, NodeRt{});
  rerankLocked(n);
  afterEventLocked(n);
  if (tracer_ != nullptr) tracer_->beginSpan(n, trace::SpanKind::Queued);
  return n;
}

std::optional<NodeId> QueryScheduler::dequeue() {
  MutexLock lock(mu_);
  // Apply staged feedback before choosing: the pick must reflect every
  // report that arrived since the last scheduling event.
  drainFeedbackLocked();
  while (!heap_.empty()) {
    const HeapEntry top = heap_.top();
    heap_.pop();
    auto it = rt_.find(top.node);
    if (it == rt_.end() || it->second.version != top.version ||
        !graph_.contains(top.node) ||
        graph_.state(top.node) != QueryState::Waiting) {
      ++stats_.staleHeapPops;
      continue;
    }
    graph_.setState(top.node, QueryState::Executing);
    it->second.version++;  // invalidate any remaining heap entries
    it->second.execSeq = nextExecSeq_++;
    --waiting_;
    ++executing_;
    ++stats_.dequeued;
    afterEventLocked(top.node);
    if (tracer_ != nullptr) {
      tracer_->endSpan(top.node, trace::SpanKind::Queued);
    }
    return top.node;
  }
  return std::nullopt;
}

void QueryScheduler::completed(NodeId n) {
  MutexLock lock(mu_);
  drainFeedbackLocked();
  MQS_CHECK_MSG(graph_.contains(n), "completed() on unknown node");
  MQS_CHECK_MSG(graph_.state(n) == QueryState::Executing,
                "completed() on a non-executing node");
  graph_.setState(n, QueryState::Cached);
  --executing_;
  ++stats_.completedCount;
  afterEventLocked(n);
}

void QueryScheduler::swappedOut(NodeId n) {
  MutexLock lock(mu_);
  drainFeedbackLocked();
  MQS_CHECK_MSG(graph_.contains(n), "swappedOut() on unknown node");
  MQS_CHECK_MSG(graph_.state(n) == QueryState::Cached,
                "swappedOut() on a non-cached node");
  // A real retained state, not a tombstone: the node and its edges stay in
  // the graph so a later restored() can revive it without re-submission.
  graph_.setState(n, QueryState::SwappedOut);
  ++stats_.swappedOutCount;
  afterEventLocked(n);
}

void QueryScheduler::restored(NodeId n) {
  MutexLock lock(mu_);
  drainFeedbackLocked();
  MQS_CHECK_MSG(graph_.contains(n), "restored() on unknown node");
  MQS_CHECK_MSG(graph_.state(n) == QueryState::SwappedOut,
                "restored() on a non-swapped-out node");
  graph_.setState(n, QueryState::Cached);
  ++stats_.restoredCount;
  afterEventLocked(n);
}

void QueryScheduler::noteFold(NodeId subscriber, NodeId owner) {
  MutexLock lock(mu_);
  drainFeedbackLocked();
  // Tolerant: the fold already happened at the scan registry; if either
  // endpoint has since left the graph there is nothing to annotate.
  if (subscriber == owner) return;
  if (!graph_.contains(subscriber) || !graph_.contains(owner)) return;
  if (!graph_.addFoldEdge(owner, subscriber)) return;
  ++stats_.foldEdges;
  afterEventLocked(subscriber);
}

void QueryScheduler::retired(NodeId n) {
  MutexLock lock(mu_);
  drainFeedbackLocked();
  MQS_CHECK_MSG(graph_.contains(n), "retired() on unknown node");
  const QueryState s = graph_.state(n);
  MQS_CHECK_MSG(s == QueryState::Cached || s == QueryState::SwappedOut,
                "retired() on a node that is neither cached nor swapped out");
  if (s == QueryState::Cached) {
    // Terminal drop of a cached result (no spill tier): this is the
    // historical swappedOut() path, counted identically.
    graph_.setState(n, QueryState::SwappedOut);
    ++stats_.swappedOutCount;
  }
  ++stats_.retiredCount;
  const std::vector<NodeId> affected = graph_.neighbors(n);
  graph_.remove(n);
  rt_.erase(n);
  if (policy_->ranksDependOnGraph()) {
    if (incremental_) {
      for (NodeId k : affected) {
        if (graph_.contains(k) && graph_.state(k) == QueryState::Waiting) {
          rerankLocked(k);
        }
      }
    } else {
      rerankAllWaitingLocked();
    }
  }
}

void QueryScheduler::failed(NodeId n) {
  MutexLock lock(mu_);
  drainFeedbackLocked();
  MQS_CHECK_MSG(graph_.contains(n), "failed() on unknown node");
  MQS_CHECK_MSG(graph_.state(n) == QueryState::Executing,
                "failed() on a non-executing node");
  graph_.setState(n, QueryState::Failed);
  const std::vector<NodeId> affected = graph_.neighbors(n);
  graph_.remove(n);
  rt_.erase(n);
  --executing_;
  ++stats_.failedCount;
  if (policy_->ranksDependOnGraph()) {
    if (incremental_) {
      for (NodeId k : affected) {
        if (graph_.contains(k) && graph_.state(k) == QueryState::Waiting) {
          rerankLocked(k);
        }
      }
    } else {
      rerankAllWaitingLocked();
    }
  }
}

void QueryScheduler::reportQueryOutcome(double achievedOverlap) {
  const FeedbackEvent ev{FeedbackEvent::Kind::Outcome, achievedOverlap};
  if (feedback_.tryPush(ev)) return;
  // Ring full: apply the whole backlog (plus this event) inline so no
  // feedback is ever lost.
  MutexLock lock(mu_);
  drainFeedbackLocked(&ev);
}

void QueryScheduler::reportResourceSignal(double ioCongestion) {
  const FeedbackEvent ev{FeedbackEvent::Kind::Resource, ioCongestion};
  if (feedback_.tryPush(ev)) return;
  MutexLock lock(mu_);
  drainFeedbackLocked(&ev);
}

std::vector<QueryScheduler::ReuseSource> QueryScheduler::executingSources(
    NodeId n) const {
  MutexLock lock(mu_);
  std::vector<ReuseSource> sources;
  if (!graph_.contains(n)) return sources;
  const auto myIt = rt_.find(n);
  const std::uint64_t mySeq = myIt == rt_.end() ? 0 : myIt->second.execSeq;
  std::vector<std::uint64_t> seqs;
  for (const Edge& e : graph_.inEdges(n)) {
    if (graph_.state(e.peer) != QueryState::Executing) continue;
    const auto it = rt_.find(e.peer);
    const std::uint64_t peerSeq = it == rt_.end() ? 0 : it->second.execSeq;
    // Deadlock avoidance: wait only on queries that started earlier.
    if (mySeq == 0 || peerSeq == 0 || peerSeq >= mySeq) continue;
    sources.push_back(ReuseSource{e.peer, e.overlap, QueryState::Executing});
    seqs.push_back(peerSeq);
  }
  // Deterministic candidate order: overlap descending, then the older
  // execution first (it will finish sooner, all else equal).
  std::vector<std::size_t> order(sources.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (sources[a].overlap != sources[b].overlap) {
      return sources[a].overlap > sources[b].overlap;
    }
    return seqs[a] < seqs[b];
  });
  std::vector<ReuseSource> sorted;
  sorted.reserve(sources.size());
  for (const std::size_t i : order) sorted.push_back(sources[i]);
  return sorted;
}

std::optional<QueryScheduler::ReuseSource> QueryScheduler::bestExecutingSource(
    NodeId n) const {
  const std::vector<ReuseSource> sources = executingSources(n);
  if (sources.empty()) return std::nullopt;
  return sources.front();
}

std::optional<QueryScheduler::ReuseSource> QueryScheduler::bestReuseSource(
    NodeId n, bool allowExecuting) const {
  MutexLock lock(mu_);
  if (!graph_.contains(n)) return std::nullopt;
  const std::uint64_t mySeq = [&] {
    auto it = rt_.find(n);
    return it == rt_.end() ? 0ULL : it->second.execSeq;
  }();

  std::optional<ReuseSource> best;
  for (const Edge& e : graph_.inEdges(n)) {
    const QueryState s = graph_.state(e.peer);
    if (s == QueryState::Cached) {
      // usable as-is
    } else if (s == QueryState::Executing && allowExecuting) {
      // Deadlock avoidance: only wait on queries that started earlier.
      const auto it = rt_.find(e.peer);
      const std::uint64_t peerSeq =
          it == rt_.end() ? 0ULL : it->second.execSeq;
      if (mySeq == 0 || peerSeq == 0 || peerSeq >= mySeq) continue;
    } else {
      continue;
    }
    const bool better =
        !best || e.overlap > best->overlap ||
        (e.overlap == best->overlap && s == QueryState::Cached &&
         best->state == QueryState::Executing);
    if (better) best = ReuseSource{e.peer, e.overlap, s};
  }
  return best;
}

std::optional<QueryState> QueryScheduler::stateOf(NodeId n) const {
  MutexLock lock(mu_);
  if (!graph_.contains(n)) return std::nullopt;
  return graph_.state(n);
}

query::PredicatePtr QueryScheduler::predicateOf(NodeId n) const {
  MutexLock lock(mu_);
  return graph_.predicate(n).clone();
}

double QueryScheduler::rankOf(NodeId n) const {
  MutexLock lock(mu_);
  return policy_->rank(graph_, n);
}

std::size_t QueryScheduler::waitingCount() const {
  MutexLock lock(mu_);
  return waiting_;
}

std::size_t QueryScheduler::executingCount() const {
  MutexLock lock(mu_);
  return executing_;
}

std::uint64_t QueryScheduler::execSeq(NodeId n) const {
  MutexLock lock(mu_);
  const auto it = rt_.find(n);
  return it == rt_.end() ? 0 : it->second.execSeq;
}

QueryScheduler::Stats QueryScheduler::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace mqs::sched
