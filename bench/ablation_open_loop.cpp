// Ablation: open-loop (Poisson) arrivals. The paper's clients are
// closed-loop (wait-for-completion); web-driven servers (its ref [11],
// Waas & Kersten) see an offered load instead. Sweeping the arrival rate
// exposes each strategy's saturation point: response times stay flat until
// the reuse-adjusted service capacity is exceeded, then blow up — and
// strategies that manufacture more reuse saturate later.
#include "bench_common.hpp"

using namespace mqs;

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "ablation_open_loop");
  ctx.printHeader();

  const std::vector<std::string> policies = {"FIFO", "SJF", "CF", "COMBINED"};
  const auto ratesX10 =
      ctx.options().getIntList("ratesx10", {5, 10, 20, 40, 80});

  for (const vm::VMOp op : {vm::VMOp::Subsample, vm::VMOp::Average}) {
    Table table(std::string("mean response (s) vs Poisson arrival rate (4 threads), ") +
                bench::opName(op));
    std::vector<std::string> cols = {"rate(q/s)"};
    for (const auto& p : policies) cols.push_back(p);
    table.setColumns(cols);

    for (const auto rx10 : ratesX10) {
      const double rate = static_cast<double>(rx10) / 10.0;
      std::vector<double> row;
      for (const auto& policy : policies) {
        const auto result = driver::SimExperiment::runOpenLoop(
            ctx.workload(op), ctx.server(policy, 4, 64 * MiB, 32 * MiB),
            rate);
        row.push_back(result.summary.meanResponse);
      }
      table.addRow(formatDouble(rate, 1), row);
    }
    ctx.emit(table);
  }
  return 0;
}
