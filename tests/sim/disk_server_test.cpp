#include "sim/disk_server.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/task.hpp"

namespace mqs::sim {
namespace {

storage::DiskModel testModel() {
  storage::DiskModel m;
  m.seekOverheadSec = 1.0;
  m.sequentialOverheadSec = 0.1;
  m.bytesPerSecond = 1e12;  // negligible transfer: isolate positioning
  return m;
}

Task<void> request(DiskServer& disk, std::uint64_t pos,
                   std::vector<std::uint64_t>* order, Simulator* sim,
                   std::vector<double>* times) {
  co_await disk.service(pos, 1000);
  order->push_back(pos);
  if (times != nullptr) times->push_back(sim->now());
}

TEST(DiskServer, FifoServesInArrivalOrder) {
  Simulator sim;
  DiskServer disk(sim, testModel(), DiskDiscipline::Fifo);
  std::vector<std::uint64_t> order;
  for (const std::uint64_t pos : {50ULL, 10ULL, 30ULL, 20ULL}) {
    sim.spawn(request(disk, pos, &order, &sim, nullptr));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{50, 10, 30, 20}));
  EXPECT_EQ(disk.requestsServed(), 4u);
  // Nothing is sequential in this scatter.
  EXPECT_EQ(disk.sequentialServed(), 0u);
}

TEST(DiskServer, ElevatorSweepsUpward) {
  Simulator sim;
  DiskServer disk(sim, testModel(), DiskDiscipline::Elevator);
  std::vector<std::uint64_t> order;
  // First request dispatches immediately (queue empty); the rest arrive
  // while it is being served and get elevator-ordered.
  sim.spawn(request(disk, 100, &order, &sim, nullptr));
  for (const std::uint64_t pos : {400ULL, 150ULL, 300ULL, 120ULL}) {
    sim.spawn(request(disk, pos, &order, &sim, nullptr));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{100, 120, 150, 300, 400}));
}

TEST(DiskServer, ElevatorWrapsLikeCScan) {
  Simulator sim;
  DiskServer disk(sim, testModel(), DiskDiscipline::Elevator);
  std::vector<std::uint64_t> order;
  sim.spawn(request(disk, 500, &order, &sim, nullptr));
  for (const std::uint64_t pos : {600ULL, 50ULL, 80ULL}) {
    sim.spawn(request(disk, pos, &order, &sim, nullptr));
  }
  sim.run();
  // From 501: up to 600, then wrap to 50, 80.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{500, 600, 50, 80}));
}

TEST(DiskServer, SequentialRunsChargeReducedOverhead) {
  Simulator sim;
  DiskServer disk(sim, testModel(), DiskDiscipline::Elevator,
                  /*contiguityWindow=*/4);
  std::vector<std::uint64_t> order;
  std::vector<double> times;
  sim.spawn(request(disk, 10, &order, &sim, &times));
  sim.spawn(request(disk, 11, &order, &sim, &times));
  sim.spawn(request(disk, 12, &order, &sim, &times));
  sim.run();
  // First pays a seek (cold head); next two continue the run.
  EXPECT_EQ(disk.sequentialServed(), 2u);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_NEAR(times[0], 1.0, 1e-6);
  EXPECT_NEAR(times[1], 1.1, 1e-6);
  EXPECT_NEAR(times[2], 1.2, 1e-6);
  EXPECT_NEAR(disk.busyIntegral(), 1.2, 1e-6);
}

TEST(DiskServer, GapBeyondWindowIsASeek) {
  Simulator sim;
  DiskServer disk(sim, testModel(), DiskDiscipline::Elevator,
                  /*contiguityWindow=*/4);
  std::vector<std::uint64_t> order;
  sim.spawn(request(disk, 10, &order, &sim, nullptr));
  sim.spawn(request(disk, 20, &order, &sim, nullptr));  // gap 9 > 4
  sim.run();
  EXPECT_EQ(disk.sequentialServed(), 0u);
}

TEST(DiskServer, ElevatorBeatsFifoOnInterleavedStreams) {
  // Two interleaved ascending streams: FIFO alternates (all seeks);
  // the elevator reorders into two runs.
  auto runWith = [](DiskDiscipline disc) {
    Simulator sim;
    DiskServer disk(sim, testModel(), disc);
    std::vector<std::uint64_t> order;
    for (int i = 0; i < 10; ++i) {
      sim.spawn(request(disk, static_cast<std::uint64_t>(i), &order, &sim,
                        nullptr));
      sim.spawn(request(disk, static_cast<std::uint64_t>(1000 + i), &order,
                        &sim, nullptr));
    }
    sim.run();
    return sim.now();
  };
  EXPECT_LT(runWith(DiskDiscipline::Elevator),
            runWith(DiskDiscipline::Fifo));
}

TEST(DiskServer, KeepsWorkingAcrossIdlePeriods) {
  Simulator sim;
  DiskServer disk(sim, testModel(), DiskDiscipline::Elevator);
  std::vector<std::uint64_t> order;
  sim.spawn(request(disk, 5, &order, &sim, nullptr));
  sim.scheduleAfter(10.0, [&] {
    sim.spawn(request(disk, 6, &order, &sim, nullptr));
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{5, 6}));
  EXPECT_EQ(disk.queueLength(), 0u);
}

}  // namespace
}  // namespace mqs::sim
