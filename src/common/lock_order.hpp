// Debug-build lock-rank checker: a runtime proof that every thread acquires
// the system's mutexes in one global order, so no interleaving can deadlock.
//
// Every annotated Mutex (common/thread_annotations.hpp) carries a static
// rank from the table below. Each thread keeps a stack of the locks it
// holds; acquiring a ranked lock whose rank is not strictly greater than
// every ranked lock already held — or re-acquiring any held lock — prints
// the held-lock stack plus the offending acquisition and aborts. The hooks
// compile out of release builds (NDEBUG) so the hot paths pay nothing; the
// checker core itself is always compiled so lock_order_test can drive it
// directly in every build type. Define MQS_LOCK_ORDER=1 to force the hooks
// on in an optimized build.
//
// The global ranking (documented in DESIGN.md §9, "Concurrency contracts"):
// a thread may hold at most one lock per row and must acquire rows top to
// bottom. Unranked locks (the default Mutex constructor) are exempt from
// the order check but still reentrancy-checked.
#pragma once

#include <cstddef>
#include <cstdint>

#ifndef MQS_LOCK_ORDER
#ifdef NDEBUG
#define MQS_LOCK_ORDER 0
#else
#define MQS_LOCK_ORDER 1
#endif
#endif

namespace mqs::lockorder {

/// Global lock acquisition order, outermost first. Gaps leave room for new
/// subsystems without renumbering. Rationale for the order actually nested
/// today:
///   QueryServer -> Scheduler      (submit/workerLoop/onBlobEvicted)
///   {Scheduler, DataStore, PageSpace} -> TraceRegistry  (span/counter
///                                  emission under the subsystem lock)
///   anything -> Logging           (MQS_LOG is usable everywhere)
/// Everything else (storage sources, queues, metrics) is a leaf in
/// practice; the distinct ranks keep future nestings honest.
enum class Rank : std::uint16_t {
  kUnranked = 0,        ///< order-exempt; reentrancy still checked
  kNetServer = 10,      ///< net::NetServer::mu_ (connection registry)
  kQueryServer = 20,    ///< server::QueryServer::mu_ (dispatch state)
  kScheduler = 30,      ///< sched::QueryScheduler::mu_ (graph + heap)
  kDataStoreShard = 38, ///< datastore::DataStore shard locks (blobs + LRU).
                        ///< A thread holds at most ONE shard at a time (the
                        ///< budget-rebalance slow path releases its home
                        ///< shard before reclaiming from another).
  kDataStore = 40,      ///< datastore::DataStore::mu_ (listener registration)
  kSpillTier = 44,      ///< datastore::SpillTier::mu_ (spill metadata + index).
                        ///< Below kDataStore: engines demote under no DS
                        ///< lock, and restore releases the spill lock before
                        ///< re-inserting into the Data Store.
  kPageSpaceShard = 48, ///< pagespace::PageSpaceManager shard locks (cache
                        ///< maps). Same one-shard-at-a-time discipline as
                        ///< kDataStoreShard.
  kPageSpace = 50,      ///< pagespace::PageSpaceManager::mu_ (source registry)
  kScanRegistry = 55,   ///< pagespace::ScanRegistry::mu_ (shared-scan table,
                        ///< DESIGN.md §14). A leaf in practice: publish/fail
                        ///< copy out under the lock and fire latches after
                        ///< releasing it, so no subscriber wakes while the
                        ///< registry is held.
  kStorageFaulty = 60,  ///< storage::FaultySource::mu_ (injection state)
  kStorageFile = 65,    ///< storage::FileSource::ioMutex_ (FILE* serialization)
  kBlockingQueue = 70,  ///< BlockingQueue<T>::mu_ (thread-pool / net queues)
  kLoadgen = 75,        ///< loadgen per-connection state (outstanding map)
  kMetrics = 80,        ///< metrics::Collector slot locks (record vectors)
  kTraceRegistry = 90,  ///< trace::Tracer::registryMu_ (buffer registry)
  kLogging = 100,       ///< logging sink mutex (innermost: log anywhere)
};

/// Checks the acquisition of `mu` against the calling thread's held-lock
/// stack and pushes it. Called by Mutex::lock() *before* blocking on the
/// underlying mutex, so an inversion aborts with both stacks printed
/// instead of deadlocking. Aborts on (a) `mu` already held (reentrancy) or
/// (b) `rank` != kUnranked and <= the highest ranked lock currently held.
void onAcquire(const void* mu, const char* name, Rank rank);

/// Pops `mu` from the calling thread's held-lock stack (out-of-LIFO-order
/// release is legal and handled). No-op if `mu` is not on the stack.
void onRelease(const void* mu) noexcept;

/// Number of locks the calling thread currently holds (test hook).
[[nodiscard]] std::size_t heldCount() noexcept;

}  // namespace mqs::lockorder
