// True positive (half 1): ma_ -> mb_ in this TU, mb_ -> ma_ in
// tp_cycle_b.cpp. Both mutexes are unranked, so only the merged cross-TU
// graph can see the cycle — this is the case the per-TU fragment merge
// exists for.
#include "ranks.hpp"

namespace fx {

class CycA {
 public:
  void forward() {
    MutexLock a(ma_);
    MutexLock b(mb_);
  }
  void backward();  // defined in tp_cycle_b.cpp

 private:
  Mutex ma_{lockorder::Rank::kUnranked, "fx.cyc.ma"};
  Mutex mb_{lockorder::Rank::kUnranked, "fx.cyc.mb"};
};

}  // namespace fx
