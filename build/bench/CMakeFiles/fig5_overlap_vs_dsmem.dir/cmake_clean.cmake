file(REMOVE_RECURSE
  "CMakeFiles/fig5_overlap_vs_dsmem.dir/fig5_overlap_vs_dsmem.cpp.o"
  "CMakeFiles/fig5_overlap_vs_dsmem.dir/fig5_overlap_vs_dsmem.cpp.o.d"
  "fig5_overlap_vs_dsmem"
  "fig5_overlap_vs_dsmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_overlap_vs_dsmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
