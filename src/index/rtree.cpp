#include "index/rtree.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.hpp"

namespace mqs::index {

struct RTree::Entry {
  Rect rect;
  std::unique_ptr<Node> child;  ///< non-null in internal nodes
  std::uint64_t value = 0;      ///< payload in leaf nodes
};

struct RTree::Node {
  int level = 0;  ///< 0 = leaf
  Node* parent = nullptr;
  std::vector<Entry> entries;
};

namespace {

Rect nodeRect(const RTree::Node& node);

std::int64_t enlargement(const Rect& base, const Rect& extra) {
  return Rect::bounding(base, extra).area() - base.area();
}

}  // namespace

namespace {
Rect nodeRect(const RTree::Node& node) {
  Rect r{};
  bool first = true;
  for (const auto& e : node.entries) {
    r = first ? e.rect : Rect::bounding(r, e.rect);
    first = false;
  }
  return r;
}
}  // namespace

RTree::RTree(std::size_t maxEntries)
    : root_(std::make_unique<Node>()), maxEntries_(maxEntries) {
  MQS_CHECK(maxEntries_ >= 4);
  minEntries_ = std::max<std::size_t>(2, maxEntries_ * 2 / 5);
}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

RTree::Node* RTree::chooseSubtree(Node* node, const Rect& rect,
                                  int targetLevel) const {
  while (node->level > targetLevel) {
    Entry* best = nullptr;
    std::int64_t bestEnlarge = std::numeric_limits<std::int64_t>::max();
    std::int64_t bestArea = std::numeric_limits<std::int64_t>::max();
    for (auto& e : node->entries) {
      const std::int64_t grow = enlargement(e.rect, rect);
      const std::int64_t area = e.rect.area();
      if (grow < bestEnlarge || (grow == bestEnlarge && area < bestArea)) {
        best = &e;
        bestEnlarge = grow;
        bestArea = area;
      }
    }
    MQS_CHECK(best != nullptr);
    node = best->child.get();
  }
  return node;
}

void RTree::insert(const Rect& rect, std::uint64_t value) {
  MQS_CHECK_MSG(!rect.empty(), "RTree does not index empty rectangles");
  Entry e;
  e.rect = rect;
  e.value = value;
  insertEntry(std::move(e), /*targetLevel=*/0);
  ++size_;
}

void RTree::insertEntry(Entry entry, int targetLevel) {
  Node* node = chooseSubtree(root_.get(), entry.rect, targetLevel);
  if (entry.child) entry.child->parent = node;
  node->entries.push_back(std::move(entry));
  if (node->entries.size() > maxEntries_) {
    splitNode(node);
  } else {
    adjustUpward(node);
  }
}

void RTree::splitNode(Node* node) {
  auto entries = std::move(node->entries);
  node->entries.clear();
  auto sibling = std::make_unique<Node>();
  sibling->level = node->level;

  // Quadratic seed pick: the pair wasting the most area together.
  std::size_t seedA = 0, seedB = 1;
  std::int64_t worst = std::numeric_limits<std::int64_t>::min();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      const std::int64_t waste =
          Rect::bounding(entries[i].rect, entries[j].rect).area() -
          entries[i].rect.area() - entries[j].rect.area();
      if (waste > worst) {
        worst = waste;
        seedA = i;
        seedB = j;
      }
    }
  }

  Rect rectA = entries[seedA].rect;
  Rect rectB = entries[seedB].rect;
  std::vector<Entry> groupA, groupB;
  groupA.push_back(std::move(entries[seedA]));
  groupB.push_back(std::move(entries[seedB]));
  std::vector<Entry> rest;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i != seedA && i != seedB) rest.push_back(std::move(entries[i]));
  }

  while (!rest.empty()) {
    // If one group must absorb all remaining entries to reach min fill:
    if (groupA.size() + rest.size() == minEntries_) {
      for (auto& e : rest) {
        rectA = Rect::bounding(rectA, e.rect);
        groupA.push_back(std::move(e));
      }
      rest.clear();
      break;
    }
    if (groupB.size() + rest.size() == minEntries_) {
      for (auto& e : rest) {
        rectB = Rect::bounding(rectB, e.rect);
        groupB.push_back(std::move(e));
      }
      rest.clear();
      break;
    }
    // Pick the entry with the strongest group preference.
    std::size_t pick = 0;
    std::int64_t bestDiff = -1;
    std::int64_t pickDa = 0, pickDb = 0;
    for (std::size_t i = 0; i < rest.size(); ++i) {
      const std::int64_t da = enlargement(rectA, rest[i].rect);
      const std::int64_t db = enlargement(rectB, rest[i].rect);
      const std::int64_t diff = std::abs(da - db);
      if (diff > bestDiff) {
        bestDiff = diff;
        pick = i;
        pickDa = da;
        pickDb = db;
      }
    }
    Entry chosen = std::move(rest[pick]);
    rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(pick));
    const bool toA =
        pickDa < pickDb ||
        (pickDa == pickDb && (rectA.area() < rectB.area() ||
                              (rectA.area() == rectB.area() &&
                               groupA.size() <= groupB.size())));
    if (toA) {
      rectA = Rect::bounding(rectA, chosen.rect);
      groupA.push_back(std::move(chosen));
    } else {
      rectB = Rect::bounding(rectB, chosen.rect);
      groupB.push_back(std::move(chosen));
    }
  }

  node->entries = std::move(groupA);
  sibling->entries = std::move(groupB);
  for (auto& e : node->entries) {
    if (e.child) e.child->parent = node;
  }
  for (auto& e : sibling->entries) {
    if (e.child) e.child->parent = sibling.get();
  }

  if (node == root_.get()) {
    auto newRoot = std::make_unique<Node>();
    newRoot->level = node->level + 1;
    Entry left;
    left.rect = nodeRect(*node);
    left.child = std::move(root_);
    Entry right;
    right.rect = nodeRect(*sibling);
    right.child = std::move(sibling);
    left.child->parent = newRoot.get();
    right.child->parent = newRoot.get();
    newRoot->entries.push_back(std::move(left));
    newRoot->entries.push_back(std::move(right));
    root_ = std::move(newRoot);
    return;
  }

  Node* parent = node->parent;
  for (auto& e : parent->entries) {
    if (e.child.get() == node) {
      e.rect = nodeRect(*node);
      break;
    }
  }
  Entry sibEntry;
  sibEntry.rect = nodeRect(*sibling);
  sibling->parent = parent;
  sibEntry.child = std::move(sibling);
  parent->entries.push_back(std::move(sibEntry));
  if (parent->entries.size() > maxEntries_) {
    splitNode(parent);
  } else {
    adjustUpward(parent);
  }
}

void RTree::adjustUpward(Node* node) {
  while (node != root_.get()) {
    Node* parent = node->parent;
    for (auto& e : parent->entries) {
      if (e.child.get() == node) {
        e.rect = nodeRect(*node);
        break;
      }
    }
    node = parent;
  }
}

namespace {

RTree::Node* findLeaf(RTree::Node* node, const Rect& rect,
                      std::uint64_t value, std::size_t& indexOut) {
  if (node->level == 0) {
    for (std::size_t i = 0; i < node->entries.size(); ++i) {
      if (node->entries[i].value == value && node->entries[i].rect == rect) {
        indexOut = i;
        return node;
      }
    }
    return nullptr;
  }
  for (auto& e : node->entries) {
    if (e.rect.contains(rect) || e.rect.intersects(rect)) {
      if (RTree::Node* found = findLeaf(e.child.get(), rect, value, indexOut)) {
        return found;
      }
    }
  }
  return nullptr;
}

void gatherLeafEntries(RTree::Node* node,
                       std::vector<std::pair<Rect, std::uint64_t>>& out) {
  if (node->level == 0) {
    for (const auto& e : node->entries) out.emplace_back(e.rect, e.value);
    return;
  }
  for (const auto& e : node->entries) gatherLeafEntries(e.child.get(), out);
}

}  // namespace

bool RTree::erase(const Rect& rect, std::uint64_t value) {
  std::size_t index = 0;
  Node* leaf = findLeaf(root_.get(), rect, value, index);
  if (leaf == nullptr) return false;
  leaf->entries.erase(leaf->entries.begin() +
                      static_cast<std::ptrdiff_t>(index));
  --size_;
  condenseTree(leaf);
  return true;
}

void RTree::condenseTree(Node* leaf) {
  std::vector<std::unique_ptr<Node>> orphans;
  Node* node = leaf;
  while (node != root_.get()) {
    Node* parent = node->parent;
    if (node->entries.size() < minEntries_) {
      for (std::size_t i = 0; i < parent->entries.size(); ++i) {
        if (parent->entries[i].child.get() == node) {
          orphans.push_back(std::move(parent->entries[i].child));
          parent->entries.erase(parent->entries.begin() +
                                static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    } else {
      for (auto& e : parent->entries) {
        if (e.child.get() == node) {
          e.rect = nodeRect(*node);
          break;
        }
      }
    }
    node = parent;
  }

  // Shrink the root while it is an internal node with a single child.
  while (root_->level > 0 && root_->entries.size() == 1) {
    auto child = std::move(root_->entries[0].child);
    child->parent = nullptr;
    root_ = std::move(child);
  }
  if (root_->entries.empty()) root_->level = 0;

  // Reinsert the leaf entries of every orphaned subtree.
  std::vector<std::pair<Rect, std::uint64_t>> entries;
  for (const auto& orphan : orphans) gatherLeafEntries(orphan.get(), entries);
  size_ -= entries.size();
  for (const auto& [r, v] : entries) insert(r, v);
}

namespace {
void queryRec(const RTree::Node* node, const Rect& region,
              const std::function<void(const Rect&, std::uint64_t)>& fn) {
  for (const auto& e : node->entries) {
    if (Rect::intersection(e.rect, region).empty()) continue;
    if (node->level == 0) {
      fn(e.rect, e.value);
    } else {
      queryRec(e.child.get(), region, fn);
    }
  }
}
}  // namespace

void RTree::queryIntersecting(
    const Rect& region,
    const std::function<void(const Rect&, std::uint64_t)>& fn) const {
  if (region.empty()) return;
  queryRec(root_.get(), region, fn);
}

std::vector<std::uint64_t> RTree::findIntersecting(const Rect& region) const {
  std::vector<std::uint64_t> out;
  queryIntersecting(region,
                    [&](const Rect&, std::uint64_t v) { out.push_back(v); });
  return out;
}

namespace {
bool checkRec(const RTree::Node* node, const RTree::Node* root,
              std::size_t maxEntries, std::size_t minEntries,
              std::size_t& leafCount) {
  if (node->entries.size() > maxEntries) return false;
  if (node != root && node->entries.size() < minEntries) return false;
  for (const auto& e : node->entries) {
    if (node->level == 0) {
      if (e.child) return false;
      ++leafCount;
    } else {
      if (!e.child) return false;
      if (e.child->level != node->level - 1) return false;
      if (e.child->parent != node) return false;
      if (!(e.rect == nodeRect(*e.child))) return false;
      if (!checkRec(e.child.get(), root, maxEntries, minEntries, leafCount)) {
        return false;
      }
    }
  }
  return true;
}
}  // namespace

bool RTree::checkInvariants() const {
  std::size_t leafCount = 0;
  if (!checkRec(root_.get(), root_.get(), maxEntries_, minEntries_,
                leafCount)) {
    return false;
  }
  return leafCount == size_;
}

}  // namespace mqs::index
