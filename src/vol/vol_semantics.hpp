// User-defined functions for the volume application.
//
// Reuse rules (cached result at lod I_L projected into a query at O_L):
//   * same dataset; any op pairing (Slice ≡ one-layer Subvolume);
//   * O_L must be a multiple of I_L;
//   * box origins congruent modulo I_L on every axis;
//   * usable region = box intersection shrunk to the query's output grid
//     (pitch O_L anchored at the query origin on all three axes). For a
//     Slice query the z extent is one O_L slab, so shrinking yields either
//     the full slab or nothing.
//
// Overlap index (3-D Eq. 4 analogue): (covered_voxels * I_L) /
// (query_voxels * O_L).
#pragma once

#include <vector>

#include "query/semantics.hpp"
#include "vol/vol_predicate.hpp"
#include "vol/volume_layout.hpp"

namespace mqs::vol {

class VolSemantics final : public query::QuerySemantics {
 public:
  storage::DatasetId addDataset(VolumeLayout layout);
  [[nodiscard]] const VolumeLayout& layout(storage::DatasetId dataset) const;
  [[nodiscard]] std::size_t datasetCount() const { return layouts_.size(); }

  [[nodiscard]] double overlap(const query::Predicate& cached,
                               const query::Predicate& q) const override;
  [[nodiscard]] std::uint64_t qoutsize(
      const query::Predicate& p) const override;
  [[nodiscard]] std::uint64_t qinputsize(
      const query::Predicate& p) const override;
  /// 2-D interface hook: footprint of coveredBox (used only for generic
  /// callers; the volume code paths use coveredBox directly).
  [[nodiscard]] Rect coveredRegion(const query::Predicate& cached,
                                   const query::Predicate& q) const override;
  [[nodiscard]] std::vector<query::PredicatePtr> remainder(
      const query::Predicate& cached,
      const query::Predicate& q) const override;
  /// Remainder-of-region-set support: the covered box as a sub-query, for
  /// multi-source coverage accounting in the reuse planner.
  [[nodiscard]] std::vector<query::PredicatePtr> coveredParts(
      const query::Predicate& cached,
      const query::Predicate& q) const override;
  [[nodiscard]] std::uint64_t reusedOutputBytes(
      const query::Predicate& cached,
      const query::Predicate& q) const override;

  /// The 3-D covered region (empty box when not projectable).
  [[nodiscard]] Box3 coveredBox(const VolPredicate& cached,
                                const VolPredicate& q) const;

  [[nodiscard]] static bool projectable(const VolPredicate& cached,
                                        const VolPredicate& q);

 private:
  std::vector<VolumeLayout> layouts_;
};

}  // namespace mqs::vol
