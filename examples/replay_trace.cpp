// Replay a workload trace on the deterministic DES under any policy.
//
// "extensive real user traces are very difficult to acquire" (§5) — but
// when you have one (or want to rerun a generated workload exactly), this
// tool replays it and reports the paper's metrics. With no --trace it
// generates the default classroom-style workload, saves it next to the
// results, and replays that.
//
//   ./replay_trace [--trace FILE] [--policy CF] [--threads 4] [--batch]
//                  [--save /tmp/trace.txt] [--dot /tmp/graph.dot]
#include <fstream>
#include <iostream>

#include "common/bytes.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "driver/sim_experiment.hpp"
#include "driver/trace.hpp"

using namespace mqs;

int main(int argc, char** argv) {
  const Options opts(argc, argv);

  // Workload: from a trace file, or freshly generated.
  driver::WorkloadConfig wl;
  wl.datasets = {driver::DatasetSpec{8192, 8192, 146, 11},
                 driver::DatasetSpec{8192, 8192, 146, 22}};
  wl.clientsPerDataset = {5, 3};
  wl.queriesPerClient = 12;
  wl.outputSide = 256;
  wl.zoomLevels = {2, 4, 8};
  wl.zoomWeights = {2, 3, 1};
  wl.alignGrid = 16;
  wl.seed = opts.getInt("seed", 99);

  vm::VMSemantics semantics;
  std::vector<driver::ClientWorkload> workloads;
  if (opts.has("trace")) {
    workloads = driver::loadTrace(opts.getString("trace", ""));
    // Datasets referenced by the trace must be registered; assume the
    // default geometry (traces don't carry dataset extents).
    storage::DatasetId maxDs = 0;
    for (const auto& c : workloads) maxDs = std::max(maxDs, c.dataset);
    for (storage::DatasetId d = 0; d <= maxDs; ++d) {
      (void)semantics.addDataset(index::ChunkLayout(8192, 8192, 146));
    }
    std::cout << "replaying " << opts.getString("trace", "") << ": "
              << workloads.size() << " clients\n";
  } else {
    workloads = driver::WorkloadGenerator::generate(wl, semantics);
    std::cout << "generated workload (seed " << wl.seed << "): "
              << workloads.size() << " clients x " << wl.queriesPerClient
              << " queries\n";
  }
  if (opts.has("save")) {
    const auto path = opts.getString("save", "trace.txt");
    std::cout << "saved trace to " << path << ": "
              << driver::saveTrace(path, workloads) << "\n";
  }

  // Replay through the DES directly (bypassing SimExperiment so a loaded
  // trace is used verbatim).
  sim::SimConfig cfg;
  cfg.policy = opts.getString("policy", "CF");
  cfg.threads = static_cast<int>(opts.getInt("threads", 4));
  cfg.dsBytes = opts.getBytes("ds", 4 * MiB);
  cfg.psBytes = opts.getBytes("ps", 2 * MiB);

  sim::Simulator simr;
  sim::SimServer server(simr, &semantics, cfg);
  const bool batch = opts.getBool("batch", false);
  if (batch) {
    for (const auto& c : workloads) {
      for (const auto& q : c.queries) {
        server.submit(std::make_unique<vm::VMPredicate>(q), c.client);
      }
    }
  } else {
    struct Runner {
      static sim::Task<void> client(sim::SimServer& srv,
                                    const driver::ClientWorkload* c) {
        for (const auto& q : c->queries) {
          co_await srv.executeAndWait(std::make_unique<vm::VMPredicate>(q),
                                      c->client);
        }
      }
    };
    for (const auto& c : workloads) {
      simr.spawn(Runner::client(server, &c));
    }
  }
  simr.run();

  const auto summary = metrics::summarize(server.collector().records());
  Table table(std::string("replay — ") + cfg.policy + ", " +
              (batch ? "batch" : "interactive"));
  table.setColumns({"metric", "value"});
  table.addRow({"queries", std::to_string(summary.queries)});
  table.addRow({"trimmed response (s)",
                formatDouble(summary.trimmedResponse, 3)});
  table.addRow({"makespan (s)", formatDouble(summary.makespan, 2)});
  table.addRow({"avg overlap", formatDouble(summary.avgOverlap, 3)});
  table.addRow({"reuse rate", formatDouble(summary.reuseRate, 2)});
  table.addRow({"disk bytes", formatBytes(summary.totalDiskBytes)});
  table.print(std::cout);

  if (opts.has("dot")) {
    const auto path = opts.getString("dot", "graph.dot");
    std::ofstream out(path);
    server.scheduler().graphUnsafe().writeDot(out);
    std::cout << "\nwrote final scheduling graph to " << path << "\n";
  }
  return 0;
}
