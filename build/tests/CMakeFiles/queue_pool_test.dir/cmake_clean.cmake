file(REMOVE_RECURSE
  "CMakeFiles/queue_pool_test.dir/common/queue_pool_test.cpp.o"
  "CMakeFiles/queue_pool_test.dir/common/queue_pool_test.cpp.o.d"
  "queue_pool_test"
  "queue_pool_test.pdb"
  "queue_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
