// True negatives for the GUARDED_BY check: a record with no Mutex is out
// of scope, and a fully annotated record is clean.
#include "ranks.hpp"

namespace fx {

struct WithoutMutex {
  int x_ = 0;  // no Mutex in this record: not checked
};

class AllGood {
 private:
  Mutex mu_{lockorder::Rank::kMid, "fx.allgood"};
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace fx
