#include "pagespace/page_space_manager.hpp"

#include "common/check.hpp"

namespace mqs::pagespace {

namespace {
thread_local std::uint64_t tlsDeviceBytes = 0;
}

void PageSpaceManager::resetThreadCounters() { tlsDeviceBytes = 0; }
std::uint64_t PageSpaceManager::threadDeviceBytes() { return tlsDeviceBytes; }

PageSpaceManager::PageSpaceManager(std::uint64_t capacityBytes)
    : core_(capacityBytes) {}

void PageSpaceManager::attach(storage::DatasetId dataset,
                              const storage::DataSource* source) {
  MQS_CHECK(source != nullptr);
  sources_[dataset] = source;
}

const storage::DataSource* PageSpaceManager::sourceFor(
    storage::DatasetId dataset) const {
  auto it = sources_.find(dataset);
  MQS_CHECK_MSG(it != sources_.end(), "fetch from unattached dataset");
  return it->second;
}

PagePtr PageSpaceManager::fetch(const storage::PageKey& key) {
  std::promise<PagePtr> promise;
  std::shared_future<PagePtr> toWait;
  const storage::DataSource* source = nullptr;
  {
    std::lock_guard lock(mu_);
    if (core_.touch(key)) {
      auto it = resident_.find(key);
      MQS_DCHECK(it != resident_.end());
      return it->second;
    }
    auto inIt = inflight_.find(key);
    if (inIt != inflight_.end()) {
      // Another query thread is already reading this page: merge.
      ++merged_;
      toWait = inIt->second;
    } else {
      source = sourceFor(key.dataset);
      inflight_.emplace(key, promise.get_future().share());
    }
  }

  if (source == nullptr) {
    return toWait.get();  // join the in-flight read
  }

  // Perform the device read outside the lock.
  const std::size_t n = source->pageBytes(key.page);
  auto buffer = std::make_shared<std::vector<std::byte>>(n);
  source->readPage(key.page, *buffer);
  tlsDeviceBytes += n;
  PagePtr page = std::move(buffer);

  {
    std::lock_guard lock(mu_);
    bytesRead_ += n;
    for (const auto& victim : core_.insert(key, n)) {
      resident_.erase(victim);
    }
    if (core_.contains(key)) {
      resident_[key] = page;
    }
    inflight_.erase(key);
  }
  promise.set_value(page);
  return page;
}

PageSpaceManager::Stats PageSpaceManager::stats() const {
  std::lock_guard lock(mu_);
  const auto& c = core_.stats();
  Stats s;
  s.hits = c.hits;
  // Core counts a merged fetch as a miss too; report device reads and
  // merges separately so hits + misses + merged == fetches.
  s.misses = c.misses - merged_;
  s.merged = merged_;
  s.bytesRead = bytesRead_;
  s.evictions = c.evictions;
  return s;
}

std::uint64_t PageSpaceManager::capacityBytes() const {
  std::lock_guard lock(mu_);
  return core_.capacityBytes();
}

std::uint64_t PageSpaceManager::residentBytes() const {
  std::lock_guard lock(mu_);
  return core_.residentBytes();
}

}  // namespace mqs::pagespace
