// Micro-bench: multi-source reuse uplift. A fig5-style overlap workload —
// the paper's interactive clients, biased toward browsing sessions (pan /
// zoom steps around a neighborhood) so that consecutive cached results tile
// each new viewport — is run with the planner's projection-step budget
// swept from 1 (the historic single-best-source behaviour) upward.
// Reported per budget: total output bytes served by projection, the mean
// source count per plan, how many queries composed more than one source,
// and response time — the uplift row at the bottom states whether any
// multi-source budget strictly beat the single-source baseline on bytes
// reused.
#include "bench_common.hpp"

using namespace mqs;

namespace {

// The stock paper mix spreads queries over five magnification levels, which
// dilutes source composition (a plan can only compose sources at compatible
// zoom). Narrow the mix to the browse-heavy low-zoom regime fig5 cares
// about: panning clients whose last few results jointly cover the next
// viewport.
driver::WorkloadConfig overlapWorkload(const bench::Context& ctx,
                                       vm::VMOp op) {
  auto cfg = ctx.workload(op);
  cfg.browseProbability = 0.85;
  cfg.zoomLevels = {2, 4};
  cfg.zoomWeights = {2.0, 1.0};
  cfg.alignGrid = 16;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "micro_planner");
  ctx.printHeader();

  const auto budgets = ctx.options().getIntList("sources", {1, 2, 4, 8});
  int exitCode = 0;

  for (const vm::VMOp op : {vm::VMOp::Subsample, vm::VMOp::Average}) {
    Table table(std::string("multi-source reuse (CF scheduling), ") +
                bench::opName(op));
    table.setColumns({"max-sources", "reused-MB", "avg-sources",
                      "multi-source-queries", "avg-overlap",
                      "trimmed-response(s)"});
    std::uint64_t baseline = 0;  // bytes reused at budget 1
    std::uint64_t best = 0;      // best bytes reused at any budget > 1
    for (const auto budget : budgets) {
      auto cfg = ctx.server("CF", 4, 128 * MiB, 32 * MiB);
      cfg.maxReuseSources = static_cast<int>(budget);
      const auto run =
          driver::SimExperiment::runInteractive(overlapWorkload(ctx, op), cfg);
      if (budget == 1) baseline = run.summary.totalReusedBytes;
      if (budget > 1) best = std::max(best, run.summary.totalReusedBytes);
      table.addRow(
          {std::to_string(budget),
           formatDouble(static_cast<double>(run.summary.totalReusedBytes) /
                            (1ULL << 20),
                        2),
           formatDouble(run.summary.avgReuseSources, 2),
           std::to_string(run.summary.multiSourceQueries),
           formatDouble(run.summary.avgOverlap, 3),
           formatDouble(run.summary.trimmedResponse, 3)});
    }
    ctx.emit(table);
    const bool uplift = best > baseline;
    std::cout << "# " << bench::opName(op) << ": multi-source reused "
              << (uplift ? "strictly more" : "NO more")
              << " bytes than single-source (" << best << " vs " << baseline
              << ")\n\n";
    if (!uplift) exitCode = 1;
  }
  return exitCode;
}
