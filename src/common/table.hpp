// ASCII table / CSV emission for the benchmark harnesses.
//
// Every figure bench prints one Table per chart: a header row naming the
// series (ranking strategies) and one data row per x-axis point. The same
// Table can be dumped as CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mqs {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void setColumns(std::vector<std::string> names);
  void addRow(std::vector<std::string> cells);

  /// Convenience: first cell is the x value, remaining are doubles.
  void addRow(const std::string& x, const std::vector<double>& ys,
              int precision = 3);

  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  /// Pretty-printed, column-aligned table.
  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV (no quoting needed for our numeric content).
  void printCsv(std::ostream& os) const;
  /// Write CSV to `path` (creating parent-less file); returns success.
  bool writeCsv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision.
std::string formatDouble(double v, int precision);

}  // namespace mqs
