#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, regenerate every
# figure/table of the paper plus the ablations. Pass --full to run the
# figure benches at paper scale (minutes instead of seconds).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE_FLAG="${1:-}"

cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build --output-on-failure

echo "== figures and ablations =="
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "--- $b $SCALE_FLAG ---"
  "$b" $SCALE_FLAG
done

echo "== examples (smoke) =="
build/examples/quickstart
build/examples/timeseries_app
build/examples/volume_explorer --slices 2
build/examples/replay_trace
