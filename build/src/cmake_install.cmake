# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/common/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/storage/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/index/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/pagespace/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/datastore/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/query/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/sched/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/vm/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/vol/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/metrics/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/sim/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/server/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/net/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/driver/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/common/libmqs_common.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/storage/libmqs_storage.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/index/libmqs_index.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/pagespace/libmqs_pagespace.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/datastore/libmqs_datastore.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sched/libmqs_sched.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sim/libmqs_sim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/server/libmqs_server.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/net/libmqs_net.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/vm/libmqs_vm.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/vol/libmqs_vol.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/metrics/libmqs_metrics.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/driver/libmqs_driver.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/mqs" TYPE DIRECTORY FILES "/root/repo/src/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

