file(REMOVE_RECURSE
  "CMakeFiles/mqs_server.dir/query_server.cpp.o"
  "CMakeFiles/mqs_server.dir/query_server.cpp.o.d"
  "libmqs_server.a"
  "libmqs_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqs_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
