// The paper's motivating scenario (§3): "a teaching environment, where an
// entire class can access and individually manipulate the same slide at the
// same time, searching for a particular feature". Every student browses
// around the same handful of features, so their queries overlap heavily —
// exactly the workload reuse-aware scheduling is for.
//
// Runs the class against the threaded server once per ranking policy and
// reports response times and reuse.
//
//   ./classroom [--students 12] [--queries 6] [--threads 4]
#include <iostream>

#include "common/bytes.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "driver/server_experiment.hpp"
#include "sched/policy.hpp"

using namespace mqs;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int students = static_cast<int>(opts.getInt("students", 12));
  const int queries = static_cast<int>(opts.getInt("queries", 6));

  driver::WorkloadConfig wl;
  wl.datasets = {driver::DatasetSpec{4096, 4096, 146, 99}};  // one slide
  wl.clientsPerDataset = {students};
  wl.queriesPerClient = queries;
  wl.outputSide = 256;
  wl.zoomLevels = {2, 4, 8};
  wl.zoomWeights = {2, 3, 1};
  wl.alignGrid = 16;
  wl.browseProbability = 0.5;  // students keep returning to the features
  wl.hotspotsPerDataset = 3;
  wl.op = vm::VMOp::Average;
  wl.seed = opts.getInt("seed", 4711);

  std::cout << students << " students x " << queries
            << " queries over one slide, three features of interest\n\n";

  Table table("classroom — per-policy outcome (threaded runtime)");
  table.setColumns({"policy", "trimmed-response(ms)", "reuse-rate",
                    "avg-overlap", "disk-bytes"});
  for (const auto& policy : sched::paperPolicyNames()) {
    server::ServerConfig cfg;
    cfg.threads = static_cast<int>(opts.getInt("threads", 4));
    cfg.policy = policy;
    cfg.dsBytes = opts.getBytes("ds", 16 * MiB);
    cfg.psBytes = opts.getBytes("ps", 8 * MiB);
    const auto result = driver::ServerExperiment::runInteractive(wl, cfg);
    table.addRow({policy,
                  formatDouble(result.summary.trimmedResponse * 1e3, 2),
                  formatDouble(result.summary.reuseRate, 2),
                  formatDouble(result.summary.avgOverlap, 3),
                  formatBytes(result.summary.totalDiskBytes)});
  }
  table.print(std::cout);
  std::cout << "\nHigher reuse-rate/overlap => the class shares work; "
               "wall-clock times vary with host load (use the DES benches "
               "for reproducible timing curves).\n";
  return 0;
}
