// Ablation A1: sensitivity of Closest First to its hand-tuned alpha (the
// weight of dependencies on still-executing queries). The paper fixes
// alpha = 0.2 without exploring it; this sweep shows how much it matters.
#include "bench_common.hpp"

using namespace mqs;

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "ablation_cf_alpha");
  ctx.printHeader();

  const std::vector<double> alphas = {0.05, 0.2, 0.5, 0.8, 0.95};

  for (const vm::VMOp op : {vm::VMOp::Subsample, vm::VMOp::Average}) {
    Table table(std::string("CF alpha sweep — interactive response & batch time, ") +
                bench::opName(op));
    table.setColumns({"alpha", "trimmed-response(s)", "avg-overlap",
                      "batch-total(s)"});
    for (const double alpha : alphas) {
      auto cfg = ctx.server("CF", 4, 64 * MiB, 32 * MiB);
      cfg.alpha = alpha;
      const auto inter =
          driver::SimExperiment::runInteractive(ctx.workload(op), cfg);
      const auto batch = driver::SimExperiment::runBatch(ctx.workload(op), cfg);
      table.addRow({formatDouble(alpha, 2),
                    formatDouble(inter.summary.trimmedResponse, 3),
                    formatDouble(inter.summary.avgOverlap, 3),
                    formatDouble(batch.summary.makespan, 2)});
    }
    ctx.emit(table);
  }
  return 0;
}
