// Arrival processes: each envelope must hit its configured long-run mean
// rate (they are only comparable on the overload curves if equal offered
// load means equal arrivals), respect its shape (bursts inside the ON
// window, diurnal arrivals following the cosine), and replay exactly from
// a seed.
#include "loadgen/arrival.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace mqs::loadgen {
namespace {

std::vector<double> drawUntil(ArrivalProcess& p, double horizonSec) {
  std::vector<double> times;
  for (;;) {
    const double t = p.next();
    if (t >= horizonSec) return times;
    times.push_back(t);
  }
}

TEST(Arrival, KindNamesRoundTrip) {
  for (const auto kind :
       {ArrivalConfig::Kind::Poisson, ArrivalConfig::Kind::Bursty,
        ArrivalConfig::Kind::Diurnal}) {
    EXPECT_EQ(parseArrivalKind(toString(kind)), kind);
  }
  EXPECT_THROW((void)parseArrivalKind("sawtooth"), CheckFailure);
}

TEST(Arrival, ArrivalsAreStrictlyIncreasingAndDeterministic) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalConfig::Kind::Diurnal;
  cfg.ratePerSec = 500.0;
  ArrivalProcess a(cfg, Rng(2002));
  ArrivalProcess b(cfg, Rng(2002));
  ArrivalProcess c(cfg, Rng(2003));
  double prev = -1.0;
  bool anyDifferent = false;
  for (int i = 0; i < 2000; ++i) {
    const double ta = a.next();
    EXPECT_GT(ta, prev);
    prev = ta;
    EXPECT_DOUBLE_EQ(ta, b.next());  // same seed, same stream
    anyDifferent = anyDifferent || std::abs(ta - c.next()) > 1e-12;
  }
  EXPECT_TRUE(anyDifferent) << "different seeds produced the same stream";
}

TEST(Arrival, PoissonHitsConfiguredRate) {
  ArrivalConfig cfg;
  cfg.ratePerSec = 1000.0;
  ArrivalProcess p(cfg, Rng(7));
  const double horizon = 50.0;
  const auto times = drawUntil(p, horizon);
  const double expected = cfg.ratePerSec * horizon;
  // ~50k arrivals: 4-sigma band is well under 2%.
  EXPECT_NEAR(static_cast<double>(times.size()), expected, 0.02 * expected);
  EXPECT_DOUBLE_EQ(p.maxRate(), cfg.ratePerSec);
  EXPECT_DOUBLE_EQ(p.rateAt(0.0), cfg.ratePerSec);
  EXPECT_DOUBLE_EQ(p.rateAt(123.4), cfg.ratePerSec);
}

TEST(Arrival, BurstyConfinesArrivalsToOnWindowAtSameMeanRate) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalConfig::Kind::Bursty;
  cfg.ratePerSec = 400.0;
  cfg.burstOnSec = 0.25;
  cfg.burstOffSec = 0.75;
  ArrivalProcess p(cfg, Rng(11));
  const double period = cfg.burstOnSec + cfg.burstOffSec;
  // Compressing the same mean rate into the ON quarter means 4x the rate
  // while on.
  EXPECT_DOUBLE_EQ(p.maxRate(), 1600.0);
  EXPECT_DOUBLE_EQ(p.rateAt(0.1), 1600.0);
  EXPECT_DOUBLE_EQ(p.rateAt(0.5), 0.0);

  const double horizon = 100.0;  // whole periods only, so the mean is fair
  const auto times = drawUntil(p, horizon);
  for (const double t : times) {
    const double phase = t - std::floor(t / period) * period;
    ASSERT_LT(phase, cfg.burstOnSec) << "arrival inside the OFF window";
  }
  const double expected = cfg.ratePerSec * horizon;
  EXPECT_NEAR(static_cast<double>(times.size()), expected, 0.03 * expected);
}

TEST(Arrival, DiurnalFollowsTheCosineEnvelope) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalConfig::Kind::Diurnal;
  cfg.ratePerSec = 300.0;
  cfg.diurnalPeriodSec = 10.0;
  cfg.diurnalDepth = 0.8;
  ArrivalProcess p(cfg, Rng(23));
  // Trough at t=0 (cos=1), peak half a period later.
  EXPECT_NEAR(p.rateAt(0.0), 60.0, 1e-9);
  EXPECT_NEAR(p.rateAt(5.0), 540.0, 1e-9);
  EXPECT_DOUBLE_EQ(p.maxRate(), 540.0);

  const double horizon = 100.0;  // whole periods
  const auto times = drawUntil(p, horizon);
  const double expected = cfg.ratePerSec * horizon;
  EXPECT_NEAR(static_cast<double>(times.size()), expected, 0.04 * expected);

  // Arrivals concentrate around the peak: count the quarter-period around
  // the peak vs the one around the trough of every cycle.
  std::size_t nearPeak = 0;
  std::size_t nearTrough = 0;
  for (const double t : times) {
    const double phase =
        t - std::floor(t / cfg.diurnalPeriodSec) * cfg.diurnalPeriodSec;
    if (std::abs(phase - 5.0) < 1.25) ++nearPeak;
    if (phase < 1.25 || phase > 8.75) ++nearTrough;
  }
  // Envelope ratio over those windows is ~5x; demand at least 3x so the
  // test has slack but a uniform process (ratio 1) can never pass.
  EXPECT_GT(nearPeak, 3 * nearTrough);
}

}  // namespace
}  // namespace mqs::loadgen
