#include "index/rtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace mqs::index {
namespace {

std::vector<std::uint64_t> sorted(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(RTree, EmptyTree) {
  RTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.findIntersecting(Rect::ofSize(0, 0, 100, 100)).empty());
  EXPECT_TRUE(t.checkInvariants());
}

TEST(RTree, SingleEntry) {
  RTree t;
  t.insert(Rect::ofSize(10, 10, 5, 5), 42);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.findIntersecting(Rect::ofSize(0, 0, 20, 20)),
            std::vector<std::uint64_t>{42});
  EXPECT_TRUE(t.findIntersecting(Rect::ofSize(100, 100, 5, 5)).empty());
}

TEST(RTree, RejectsEmptyRect) {
  RTree t;
  EXPECT_THROW(t.insert(Rect{}, 1), CheckFailure);
}

TEST(RTree, EraseExistingAndMissing) {
  RTree t;
  const Rect r = Rect::ofSize(0, 0, 10, 10);
  t.insert(r, 1);
  EXPECT_FALSE(t.erase(r, 2));                       // wrong value
  EXPECT_FALSE(t.erase(Rect::ofSize(1, 1, 2, 2), 1)); // wrong rect
  EXPECT_TRUE(t.erase(r, 1));
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.checkInvariants());
}

TEST(RTree, SplitsPreserveAllEntries) {
  RTree t(4);  // small fanout to force splits quickly
  for (std::uint64_t i = 0; i < 100; ++i) {
    t.insert(Rect::ofSize(static_cast<std::int64_t>(i) * 10, 0, 5, 5), i);
    ASSERT_TRUE(t.checkInvariants()) << "after insert " << i;
  }
  EXPECT_EQ(t.size(), 100u);
  const auto all = t.findIntersecting(Rect::ofSize(-10, -10, 20000, 20000));
  EXPECT_EQ(all.size(), 100u);
}

TEST(RTree, QueryIsHalfOpen) {
  RTree t;
  t.insert(Rect::ofSize(10, 0, 10, 10), 1);
  // Query region ending exactly at x=10 does not touch [10, 20).
  EXPECT_TRUE(t.findIntersecting(Rect::ofSize(0, 0, 10, 10)).empty());
  EXPECT_EQ(t.findIntersecting(Rect::ofSize(0, 0, 11, 10)).size(), 1u);
}

TEST(RTree, DuplicateRectsDistinctValues) {
  RTree t;
  const Rect r = Rect::ofSize(0, 0, 4, 4);
  t.insert(r, 1);
  t.insert(r, 2);
  EXPECT_EQ(sorted(t.findIntersecting(r)), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_TRUE(t.erase(r, 1));
  EXPECT_EQ(t.findIntersecting(r), std::vector<std::uint64_t>{2});
}

/// Property test: random inserts/erases/queries cross-checked against a
/// brute-force map, with structural invariants verified throughout.
TEST(RTree, PropertyMatchesBruteForce) {
  Rng rng(2024);
  RTree t(6);
  std::map<std::uint64_t, Rect> reference;
  std::uint64_t nextId = 0;

  for (int step = 0; step < 3000; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.55 || reference.empty()) {
      const Rect r =
          Rect::ofSize(rng.uniformInt(-200, 200), rng.uniformInt(-200, 200),
                       rng.uniformInt(1, 80), rng.uniformInt(1, 80));
      t.insert(r, nextId);
      reference.emplace(nextId, r);
      ++nextId;
    } else if (roll < 0.8) {
      // Erase a random existing entry.
      auto it = reference.begin();
      std::advance(it, rng.uniformInt(0, static_cast<std::int64_t>(
                                             reference.size()) - 1));
      ASSERT_TRUE(t.erase(it->second, it->first));
      reference.erase(it);
    } else {
      const Rect q =
          Rect::ofSize(rng.uniformInt(-250, 250), rng.uniformInt(-250, 250),
                       rng.uniformInt(1, 150), rng.uniformInt(1, 150));
      std::vector<std::uint64_t> expected;
      for (const auto& [id, r] : reference) {
        if (!Rect::intersection(r, q).empty()) expected.push_back(id);
      }
      EXPECT_EQ(sorted(t.findIntersecting(q)), expected) << "step " << step;
    }
    ASSERT_EQ(t.size(), reference.size());
    if (step % 100 == 0) {
      ASSERT_TRUE(t.checkInvariants()) << "step " << step;
    }
  }
  EXPECT_TRUE(t.checkInvariants());
}

TEST(RTree, DrainCompletely) {
  Rng rng(7);
  RTree t(4);
  std::vector<std::pair<Rect, std::uint64_t>> entries;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Rect r =
        Rect::ofSize(rng.uniformInt(0, 500), rng.uniformInt(0, 500),
                     rng.uniformInt(1, 30), rng.uniformInt(1, 30));
    t.insert(r, i);
    entries.emplace_back(r, i);
  }
  for (const auto& [r, v] : entries) {
    ASSERT_TRUE(t.erase(r, v));
  }
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.checkInvariants());
  // Tree remains usable after full drain.
  t.insert(Rect::ofSize(0, 0, 1, 1), 9);
  EXPECT_EQ(t.size(), 1u);
}

TEST(RTree, MoveSemantics) {
  RTree a;
  a.insert(Rect::ofSize(0, 0, 2, 2), 5);
  RTree b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.findIntersecting(Rect::ofSize(0, 0, 3, 3)).size(), 1u);
}

}  // namespace
}  // namespace mqs::index
