#include "common/table.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace mqs {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t("Figure X");
  t.setColumns({"threads", "FIFO", "SJF"});
  t.addRow({"1", "10.5", "9.1"});
  t.addRow({"16", "3.25", "2.75"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Figure X"), std::string::npos);
  EXPECT_NE(s.find("threads"), std::string::npos);
  EXPECT_NE(s.find("3.25"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t("t");
  t.setColumns({"x", "y"});
  t.addRow({"1", "2"});
  std::ostringstream os;
  t.printCsv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, NumericRowHelper) {
  Table t("t");
  t.setColumns({"x", "a", "b"});
  t.addRow("4", {1.23456, 7.0}, 2);
  ASSERT_EQ(t.rows().size(), 1u);
  EXPECT_EQ(t.rows()[0], (std::vector<std::string>{"4", "1.23", "7.00"}));
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("t");
  t.setColumns({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), CheckFailure);
}

TEST(Table, WriteCsvToFile) {
  Table t("t");
  t.setColumns({"k"});
  t.addRow({"v"});
  const auto path = std::filesystem::temp_directory_path() / "mqs_table.csv";
  ASSERT_TRUE(t.writeCsv(path.string()));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k");
  std::filesystem::remove(path);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace mqs
