file(REMOVE_RECURSE
  "CMakeFiles/disk_server_test.dir/sim/disk_server_test.cpp.o"
  "CMakeFiles/disk_server_test.dir/sim/disk_server_test.cpp.o.d"
  "disk_server_test"
  "disk_server_test.pdb"
  "disk_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
