
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/disk_model.cpp" "src/storage/CMakeFiles/mqs_storage.dir/disk_model.cpp.o" "gcc" "src/storage/CMakeFiles/mqs_storage.dir/disk_model.cpp.o.d"
  "/root/repo/src/storage/file_source.cpp" "src/storage/CMakeFiles/mqs_storage.dir/file_source.cpp.o" "gcc" "src/storage/CMakeFiles/mqs_storage.dir/file_source.cpp.o.d"
  "/root/repo/src/storage/synthetic_source.cpp" "src/storage/CMakeFiles/mqs_storage.dir/synthetic_source.cpp.o" "gcc" "src/storage/CMakeFiles/mqs_storage.dir/synthetic_source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mqs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mqs_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
