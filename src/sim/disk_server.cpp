#include "sim/disk_server.hpp"

#include <limits>

#include "common/check.hpp"

namespace mqs::sim {

DiskServer::DiskServer(Simulator& sim, storage::DiskModel model,
                       DiskDiscipline discipline,
                       std::uint64_t contiguityWindow)
    : sim_(&sim),
      model_(model),
      discipline_(discipline),
      window_(contiguityWindow) {
  MQS_CHECK(contiguityWindow >= 1);
}

void DiskServer::enqueue(std::uint64_t pos, std::size_t bytes,
                         std::coroutine_handle<> h) {
  queue_.push_back(Request{pos, bytes, nextArrival_++, h});
  if (!busy_) startNext();
}

std::size_t DiskServer::pickNext() const {
  MQS_DCHECK(!queue_.empty());
  if (discipline_ == DiskDiscipline::Fifo || !headValid_) {
    // Oldest request.
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue_.size(); ++i) {
      if (queue_[i].arrival < queue_[best].arrival) best = i;
    }
    return best;
  }
  // C-SCAN: the smallest position at or above the head; wrap to the
  // globally smallest when the sweep tops out.
  std::size_t bestUp = queue_.size();
  std::size_t bestAll = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].pos < queue_[bestAll].pos ||
        (queue_[i].pos == queue_[bestAll].pos &&
         queue_[i].arrival < queue_[bestAll].arrival)) {
      bestAll = i;
    }
    if (queue_[i].pos >= headPos_) {
      if (bestUp == queue_.size() || queue_[i].pos < queue_[bestUp].pos ||
          (queue_[i].pos == queue_[bestUp].pos &&
           queue_[i].arrival < queue_[bestUp].arrival)) {
        bestUp = i;
      }
    }
  }
  return bestUp != queue_.size() ? bestUp : bestAll;
}

void DiskServer::startNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  const std::size_t idx = pickNext();
  const Request req = queue_[idx];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));

  // Sequential if the request continues the current sweep within the
  // contiguity window (track-buffer / readahead reach).
  const bool sequential = headValid_ && req.pos >= headPos_ &&
                          req.pos - headPos_ <= window_;
  const double duration =
      model_.transferTime(req.bytes) + (sequential
                                            ? model_.sequentialOverheadSec
                                            : model_.seekOverheadSec);
  headValid_ = true;
  headPos_ = req.pos + 1;
  busyIntegral_ += duration;
  ++served_;
  if (sequential) ++sequential_;

  sim_->scheduleAfter(duration, [this, h = req.handle] {
    h.resume();
    startNext();
  });
}

}  // namespace mqs::sim
