#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace mqs {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double p) {
  MQS_CHECK(!xs.empty());
  MQS_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double trimmedMean(std::vector<double> xs, double keepFraction) {
  MQS_CHECK(!xs.empty());
  MQS_CHECK(keepFraction > 0.0 && keepFraction <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double dropEachSide = (1.0 - keepFraction) / 2.0;
  const auto drop = static_cast<std::size_t>(
      std::floor(dropEachSide * static_cast<double>(xs.size())));
  const std::size_t lo = drop;
  const std::size_t hi = xs.size() - drop;  // exclusive
  MQS_CHECK(hi > lo);
  double acc = 0.0;
  for (std::size_t i = lo; i < hi; ++i) acc += xs[i];
  return acc / static_cast<double>(hi - lo);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace mqs
