// Bounded multi-producer staging ring for scheduler feedback.
//
// reportQueryOutcome()/reportResourceSignal() arrive from every query
// thread at completion rate; with an adaptive policy each used to take the
// scheduler lock and rerank the whole waiting set. The ring decouples the
// two: producers stage events with a couple of atomic operations and no
// lock, and the scheduler drains the batch at its next scheduling event
// (submit/dequeue/completion), applying all staged events and reranking
// once (DESIGN.md §10).
//
// Vyukov-style bounded queue: each cell carries a sequence number that
// encodes whether it is free for the producer at that position or holds a
// value for the consumer. Producers claim positions by CAS on the tail;
// the consumer side is NOT internally synchronized — the scheduler only
// pops while holding its own lock (single consumer by construction).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mqs::sched {

template <typename T, std::size_t N>
class MpscRing {
  static_assert(N >= 2 && (N & (N - 1)) == 0, "capacity must be a power of 2");

 public:
  MpscRing() {
    for (std::size_t i = 0; i < N; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Stage a value. Returns false when the ring is full (the caller falls
  /// back to applying the event under the consumer's lock, so feedback is
  /// never dropped).
  bool tryPush(const T& value) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & (N - 1)];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = value;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full: the consumer has not freed this cell yet
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Pop the oldest staged value. Callers must serialize pops externally
  /// (the scheduler holds its lock); producers may push concurrently.
  bool tryPop(T& out) {
    const std::uint64_t pos = head_;
    Cell& cell = cells_[pos & (N - 1)];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1) <
        0) {
      return false;  // empty, or the producer has not published yet
    }
    out = cell.value;
    cell.seq.store(pos + N, std::memory_order_release);
    head_ = pos + 1;
    return true;
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  Cell cells_[N];
  std::atomic<std::uint64_t> tail_{0};
  /// Consumer cursor; only touched under the consumer's external lock.
  std::uint64_t head_ = 0;
};

}  // namespace mqs::sched
