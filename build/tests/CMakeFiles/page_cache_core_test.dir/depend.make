# Empty dependencies file for page_cache_core_test.
# This may be replaced when dependencies are built.
