// Disk spill tier for demoted Data Store blobs (DESIGN.md §13).
//
// Eviction used to be terminal: the bytes vanished and the scheduling
// graph's SWAPPED_OUT state was a tombstone. The spill tier gives evicted
// intermediate results a second, cheaper life — S/C-style bounded-memory
// materialization: the engines' eviction listeners *demote* blobs here
// instead of dropping them, the planner considers spilled blobs as
// RestoreFromSpill reuse candidates costed against recomputation, and a
// restore re-inserts the blob into the Data Store (SWAPPED_OUT → CACHED in
// the scheduling graph).
//
// Two storage modes behind one API:
//   * in-memory (`dir` empty) — metadata + payload stay in RAM; the
//     discrete-event engine charges DiskModel::serviceTime for restores,
//     so the simulator sees disk economics without a disk;
//   * temp-file (`dir` set) — the real server persists payloads into
//     `dir/spill-<id>.bin` from a dedicated background writer thread, so
//     demotion never blocks the eviction (hit/insert) path: demote() only
//     moves the payload into the tier and enqueues the write-out. Files
//     and the directory (if created here) are removed on destruction.
//
// Concurrency: one mutex (rank kSpillTier = 44, between the Data Store
// residual lock and the Page Space shards) guards metadata, the FIFO drop
// order, and the spatial index. Restore copies the entry out and releases
// the lock before any Data Store re-insert, so the 44 → 38 inversion can
// never occur.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/blocking_queue.hpp"
#include "common/thread_annotations.hpp"
#include "datastore/data_store.hpp"
#include "index/rtree.hpp"
#include "query/predicate.hpp"
#include "query/semantics.hpp"
#include "storage/disk_model.hpp"
#include "trace/trace.hpp"

namespace mqs::datastore {

using SpillId = std::uint64_t;

class SpillTier {
 public:
  /// `capacityBytes` bounds the tier (logical bytes, like the store);
  /// `dir` selects temp-file mode when non-empty (created if absent);
  /// `disk` prices restores in both engines (sim charges it as virtual
  /// time, the planner uses it to cost RestoreFromSpill against recompute).
  SpillTier(std::uint64_t capacityBytes, const query::QuerySemantics* semantics,
            std::string dir = {},
            storage::DiskModel disk = storage::DiskModel{});
  ~SpillTier();

  SpillTier(const SpillTier&) = delete;
  SpillTier& operator=(const SpillTier&) = delete;

  /// DS_SPILL / DS_RESTORE counters and the DS_SPILL_BYTES gauge are
  /// emitted through this tracer. Must outlive the tier. Takes mu_: the
  /// constructor already started the writer thread, which reads tracer_
  /// under the lock, so an unsynchronized store here would race with it.
  void setTracer(trace::Tracer* tracer) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    tracer_ = tracer;
  }

  struct Match {
    SpillId id = 0;
    double overlap = 0.0;
  };

  /// Planner-facing snapshot of one spilled blob: everything needed to
  /// cost a RestoreFromSpill step without taking the entry out.
  struct Candidate {
    query::PredicatePtr predicate;  ///< clone — safe past the call
    std::uint64_t logicalBytes = 0;
    double recomputeCostSec = 0.0;  ///< traced cost carried from the store
    double restoreCostSec = 0.0;    ///< modeled cost to read it back
  };

  /// Move an evicted blob into the tier. Oldest entries FIFO-drop to make
  /// room (their ids are appended to `dropped` so the caller can retire
  /// the matching graph nodes); returns nullopt — and touches nothing — if
  /// the blob alone exceeds the tier. In temp-file mode the payload
  /// write-out happens asynchronously on the writer thread.
  std::optional<SpillId> demote(EvictedBlob blob,
                                std::vector<SpillId>* dropped = nullptr);

  /// Up to `k` spilled blobs with overlap(blob, q) > minOverlap, best
  /// first (ties toward the newer entry — same bias as the store).
  [[nodiscard]] std::vector<Match> lookupTopK(const query::Predicate& q,
                                              std::size_t k,
                                              double minOverlap = 0.0) const;

  /// Snapshot for plan costing; nullopt if the entry was dropped.
  [[nodiscard]] std::optional<Candidate> candidate(SpillId id) const;

  /// Take the entry out of the tier (reading the payload back from disk in
  /// temp-file mode). Returns nullopt if it was dropped in the meantime;
  /// the EvictedBlob's id field carries the spill id.
  std::optional<EvictedBlob> restore(SpillId id);

  /// Modeled cost of restoring `bytes` (one sequential stream).
  [[nodiscard]] double restoreCostSec(std::uint64_t bytes) const {
    return disk_.serviceTime(static_cast<std::size_t>(bytes), 1);
  }

  struct Stats {
    std::uint64_t demoted = 0;   ///< blobs accepted by demote()
    std::uint64_t dropped = 0;   ///< FIFO drops + too-big rejections
    std::uint64_t restored = 0;  ///< successful restore() calls
    std::uint64_t writeouts = 0; ///< payload files persisted (file mode)
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::uint64_t capacityBytes() const { return capacity_; }
  [[nodiscard]] std::uint64_t residentBytes() const;
  [[nodiscard]] std::size_t residentEntries() const;

  /// Block until every queued write-out has settled (test/shutdown hook;
  /// immediate in in-memory mode).
  void flush();

 private:
  struct Entry {
    query::PredicatePtr predicate;
    std::vector<std::byte> payload;  ///< until persisted (or always, in-mem)
    std::uint64_t logicalBytes = 0;
    double recomputeCostSec = 0.0;
    bool persisted = false;  ///< payload lives in spill-<id>.bin
  };

  [[nodiscard]] std::string pathFor(SpillId id) const;
  void writerLoop();
  void dropLocked(SpillId id, std::vector<std::string>& deadFiles)
      REQUIRES(mu_);
  void emitSpillGaugeLocked() REQUIRES(mu_);

  const std::uint64_t capacity_;
  const query::QuerySemantics* semantics_;  ///< immutable after construction
  const std::string dir_;                   ///< empty = in-memory mode
  const storage::DiskModel disk_;
  bool createdDir_ = false;  ///< immutable after construction

  mutable Mutex mu_{lockorder::Rank::kSpillTier, "SpillTier::mu_"};
  trace::Tracer* tracer_ GUARDED_BY(mu_) = nullptr;
  CondVar drained_;  ///< signaled when pendingWrites_ hits zero
  std::unordered_map<SpillId, Entry> entries_ GUARDED_BY(mu_);
  std::list<SpillId> fifo_ GUARDED_BY(mu_);  ///< front = oldest (drop first)
  index::RTree spatial_ GUARDED_BY(mu_);
  std::uint64_t resident_ GUARDED_BY(mu_) = 0;
  SpillId nextId_ GUARDED_BY(mu_) = 1;
  int pendingWrites_ GUARDED_BY(mu_) = 0;

  std::atomic<std::uint64_t> demoted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> restored_{0};
  std::atomic<std::uint64_t> writeouts_{0};

  BlockingQueue<SpillId> writeQueue_;  ///< file mode only
  std::thread writer_;                 ///< file mode only
};

}  // namespace mqs::datastore
