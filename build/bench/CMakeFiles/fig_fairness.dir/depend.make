# Empty dependencies file for fig_fairness.
# This may be replaced when dependencies are built.
