file(REMOVE_RECURSE
  "libmqs_vm.a"
)
