// Ablation: nested reuse depth. Sub-queries are "processed just like any
// other query" (§2) — including their own Data Store lookups. This sweep
// quantifies how much that recursive reuse is worth, from none (remainders
// always recompute from raw data) to deep nesting.
#include "bench_common.hpp"

using namespace mqs;

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "ablation_nested_reuse");
  ctx.printHeader();

  const auto depths = ctx.options().getIntList("depth", {0, 1, 2, 4});

  for (const vm::VMOp op : {vm::VMOp::Subsample, vm::VMOp::Average}) {
    Table table(std::string("nested reuse depth (CF scheduling), ") +
                bench::opName(op));
    table.setColumns({"depth", "trimmed-response(s)", "batch-total(s)",
                      "device-GB"});
    for (const auto depth : depths) {
      auto cfg = ctx.server("CF", 4, 64 * MiB, 32 * MiB);
      cfg.maxNestedReuseDepth = static_cast<int>(depth);
      const auto inter =
          driver::SimExperiment::runInteractive(ctx.workload(op), cfg);
      const auto batch =
          driver::SimExperiment::runBatch(ctx.workload(op), cfg);
      table.addRow({std::to_string(depth),
                    formatDouble(inter.summary.trimmedResponse, 3),
                    formatDouble(batch.summary.makespan, 2),
                    formatDouble(static_cast<double>(inter.io.bytesRead) /
                                     (1ULL << 30),
                                 2)});
    }
    ctx.emit(table);
  }
  return 0;
}
