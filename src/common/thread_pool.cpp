#include "common/thread_pool.hpp"

#include "common/check.hpp"

namespace mqs {

ThreadPool::ThreadPool(std::size_t threads) {
  MQS_CHECK(threads > 0);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) {
  return tasks_.push(std::move(task));
}

void ThreadPool::shutdown() {
  tasks_.close();
  workers_.clear();  // jthread joins on destruction
}

void ThreadPool::workerLoop() {
  while (auto task = tasks_.pop()) {
    (*task)();
  }
}

}  // namespace mqs
