// Client/server deployment over TCP (Figure 1: clients submit queries and
// receive results over the network; the paper ran its emulated clients on
// a PC cluster connected via Fast Ethernet).
//
// Starts the query server with a TCP front-end, then emulates several
// remote viewers on separate connections — including one that pipelines a
// whole batch of movie frames down its socket.
//
//   ./remote_viewer [--viewers 4] [--policy CNBF]
#include <iostream>
#include <thread>

#include "common/bytes.hpp"
#include "common/options.hpp"
#include "net/net_client.hpp"
#include "net/net_server.hpp"
#include "storage/synthetic_source.hpp"
#include "vm/vm_executor.hpp"

using namespace mqs;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int viewers = static_cast<int>(opts.getInt("viewers", 4));

  // --- back end ---------------------------------------------------------
  vm::VMSemantics semantics;
  const auto slideId =
      semantics.addDataset(index::ChunkLayout(4096, 4096, 146));
  storage::SyntheticSlideSource slide(semantics.layout(slideId), 7);
  vm::VMExecutor executor(&semantics);
  server::ServerConfig cfg;
  cfg.threads = static_cast<int>(opts.getInt("threads", 4));
  cfg.policy = opts.getString("policy", "CNBF");
  server::QueryServer queryServer(&semantics, &executor, cfg);
  queryServer.attach(slideId, &slide);

  const auto codecs = net::CodecRegistry::standard();
  net::NetServer netServer(queryServer, &codecs);
  std::cout << "query server listening on 127.0.0.1:" << netServer.port()
            << " (policy " << cfg.policy << ")\n\n";

  // --- interactive viewers ----------------------------------------------
  {
    std::vector<std::jthread> threads;
    for (int v = 0; v < viewers; ++v) {
      threads.emplace_back([&, v] {
        net::NetClient client("127.0.0.1", netServer.port(), &codecs);
        for (int i = 0; i < 4; ++i) {
          // All viewers circle the same features: heavy overlap.
          const vm::VMPredicate q(
              slideId,
              Rect::ofSize(((v + i) % 3) * 512, (i % 2) * 512, 1024, 1024),
              4, vm::VMOp::Average);
          const auto bytes = client.execute(q);
          (void)bytes;
        }
      });
    }
  }
  std::cout << "served " << viewers << " interactive viewers x 4 queries\n";

  // --- one batch client pipelining movie frames --------------------------
  {
    net::NetClient batch("127.0.0.1", netServer.port(), &codecs);
    const int frames = 12;
    for (int f = 0; f < frames; ++f) {
      (void)batch.send(vm::VMPredicate(
          slideId, Rect::ofSize(f * 256, f * 128, 1024, 1024), 4,
          vm::VMOp::Average));
    }
    std::uint64_t bytes = 0;
    for (int f = 0; f < frames; ++f) bytes += batch.receive().bytes.size();
    std::cout << "batch client: " << frames << " pipelined frames, "
              << formatBytes(bytes) << " streamed back\n";
  }

  const auto ds = queryServer.dataStore().stats();
  const auto summary = metrics::summarize(queryServer.collector().records());
  std::cout << "\nserver totals: " << summary.queries << " queries, reuse rate "
            << summary.reuseRate << ", " << ds.evictions << " evictions, "
            << netServer.connectionsAccepted() << " connections\n";
  netServer.stop();
  queryServer.shutdown();
  return 0;
}
