// Streaming latency histogram: log-linear nanosecond buckets, HDR-style.
//
// The load generator classifies up to millions of response times per run;
// storing raw samples for an exact percentile would cost memory linear in
// offered load and a sort at the end. Instead, latencies land in a fixed
// array of log-linear buckets:
//
//   - values below 2^kSubBucketBits ns are recorded exactly;
//   - above that, each power-of-two range [2^k, 2^(k+1)) is split into
//     2^kSubBucketBits equal sub-buckets, so the relative quantization
//     error is bounded by 2^-kSubBucketBits (≤ 1/32 ≈ 3.1%).
//
// Counts are integers, so merging histograms (per-connection shards, or
// per-policy rounds) is exact and associative — (a ⊕ b) ⊕ c ≡ a ⊕ (b ⊕ c)
// bucket for bucket — and the JSON rendering below is integer-only, hence
// byte-stable across platforms and runs with equal inputs (the golden
// test's currency). Percentiles report a bucket's upper bound, so they
// never understate the tail.
#pragma once

#include <cstdint>
#include <string>

#include <array>

namespace mqs::loadgen {

class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ULL << kSubBucketBits;
  /// One linear segment per power-of-two range up to 2^63, plus the exact
  /// low range: slots [0, 2^bits) are exact values, every later group of
  /// 2^bits slots is one power-of-two range.
  static constexpr std::size_t kSlots = (64 - kSubBucketBits + 1)
                                        << kSubBucketBits;

  /// Record one latency in nanoseconds.
  void record(std::uint64_t nanos);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t maxNanos() const { return max_; }
  /// Exact mean of the recorded (unquantized) values.
  [[nodiscard]] double meanNanos() const;

  /// Upper bound of the bucket holding the p-th percentile (p in [0,100]),
  /// in nanoseconds; 0 when empty. Never understates the true percentile
  /// by more than the bucket quantization (and never overstates it past
  /// one bucket width).
  [[nodiscard]] std::uint64_t percentileNanos(double p) const;

  /// Exact, associative merge: bucket-wise count addition.
  void merge(const LatencyHistogram& other);

  /// Integer-only JSON: {"count":..,"sumNanos":..,"maxNanos":..,
  /// "buckets":[[slot,count],...]} with buckets sparse and in slot order.
  /// Byte-stable for equal recorded multisets.
  [[nodiscard]] std::string toJson() const;

  /// Slot index for a value (exposed for the unit tests).
  [[nodiscard]] static std::size_t slotOf(std::uint64_t nanos);
  /// Largest value mapping to `slot` (the reported bucket bound).
  [[nodiscard]] static std::uint64_t slotUpperBound(std::size_t slot);

 private:
  std::array<std::uint64_t, kSlots> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t max_ = 0;
  /// Exact sum of recorded values (for the mean); unsigned wraparound
  /// would need ~10^19 ns-seconds of total latency, far past any run.
  std::uint64_t sum_ = 0;
};

}  // namespace mqs::loadgen
