// Deterministic synthetic slide data.
//
// The paper's datasets are 30000x30000 3-byte-per-pixel digitized microscopy
// slides (7.5 GB total) that we do not have. Scheduling behaviour depends on
// byte volumes, chunk layout and overlap structure — not pixel content — so
// we substitute a pure function of (seed, x, y, channel). This preserves an
// essential property real data also has: every byte is reproducible, so
// tests can verify subsampling/averaging/projection against independently
// computed ground truth.
#pragma once

#include <cstdint>

#include "index/chunk_layout.hpp"
#include "storage/data_source.hpp"

namespace mqs::storage {

/// The value of channel `c` (0..2) of pixel (x, y) of the synthetic slide
/// with the given seed. Pure and cheap (a few integer mixes).
std::uint8_t syntheticPixel(std::uint64_t seed, std::int64_t x, std::int64_t y,
                            int c);

/// A slide whose pixels come from syntheticPixel, chunked per `layout`.
/// readPage materializes the page's chunk in row-major RGB order.
class SyntheticSlideSource final : public DataSource {
 public:
  SyntheticSlideSource(index::ChunkLayout layout, std::uint64_t seed);

  [[nodiscard]] PageId pageCount() const override;
  [[nodiscard]] std::size_t pageBytes(PageId page) const override;
  void readPage(PageId page, std::span<std::byte> out) const override;

  [[nodiscard]] const index::ChunkLayout& layout() const { return layout_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  index::ChunkLayout layout_;
  std::uint64_t seed_;
};

}  // namespace mqs::storage
