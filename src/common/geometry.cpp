#include "common/geometry.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace mqs {

Rect Rect::intersection(const Rect& a, const Rect& b) {
  Rect r{std::max(a.x0, b.x0), std::max(a.y0, b.y0), std::min(a.x1, b.x1),
         std::min(a.y1, b.y1)};
  if (r.empty()) return Rect{};
  return r;
}

Rect Rect::bounding(const Rect& a, const Rect& b) {
  if (a.empty()) return b.empty() ? Rect{} : b;
  if (b.empty()) return a;
  return Rect{std::min(a.x0, b.x0), std::min(a.y0, b.y0), std::max(a.x1, b.x1),
              std::max(a.y1, b.y1)};
}

std::vector<Rect> Rect::subtract(const Rect& hole) const {
  if (empty()) return {};
  const Rect in = intersection(*this, hole);
  if (in.empty()) return {*this};
  if (in == *this) return {};

  std::vector<Rect> out;
  out.reserve(4);
  // Band above the hole (full width).
  if (in.y0 > y0) out.push_back(Rect{x0, y0, x1, in.y0});
  // Band below the hole (full width).
  if (in.y1 < y1) out.push_back(Rect{x0, in.y1, x1, y1});
  // Left and right slivers within the hole's vertical band.
  if (in.x0 > x0) out.push_back(Rect{x0, in.y0, in.x0, in.y1});
  if (in.x1 < x1) out.push_back(Rect{in.x1, in.y0, x1, in.y1});
  return out;
}

std::string Rect::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.x0 << ',' << r.y0 << ' ' << r.width() << 'x'
            << r.height() << ']';
}

std::int64_t totalArea(const std::vector<Rect>& rects) {
  std::int64_t a = 0;
  for (const Rect& r : rects) a += r.area();
  return a;
}

bool exactlyCovers(const Rect& whole, const std::vector<Rect>& parts) {
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].empty()) return false;
    if (!whole.contains(parts[i])) return false;
    for (std::size_t j = i + 1; j < parts.size(); ++j) {
      if (!Rect::intersection(parts[i], parts[j]).empty()) return false;
    }
    sum += parts[i].area();
  }
  return sum == whole.area();
}

Box3 Box3::intersection(const Box3& a, const Box3& b) {
  Box3 r{std::max(a.x0, b.x0), std::max(a.y0, b.y0), std::max(a.z0, b.z0),
         std::min(a.x1, b.x1), std::min(a.y1, b.y1), std::min(a.z1, b.z1)};
  if (r.empty()) return Box3{};
  return r;
}

std::vector<Box3> Box3::subtract(const Box3& hole) const {
  if (empty()) return {};
  const Box3 in = intersection(*this, hole);
  if (in.empty()) return {*this};
  if (in == *this) return {};

  std::vector<Box3> out;
  out.reserve(6);
  // Slabs below / above the hole (full xy extent).
  if (in.z0 > z0) out.push_back(Box3{x0, y0, z0, x1, y1, in.z0});
  if (in.z1 < z1) out.push_back(Box3{x0, y0, in.z1, x1, y1, z1});
  // Within the hole's z band: y bands at full x extent.
  if (in.y0 > y0) out.push_back(Box3{x0, y0, in.z0, x1, in.y0, in.z1});
  if (in.y1 < y1) out.push_back(Box3{x0, in.y1, in.z0, x1, y1, in.z1});
  // Finally x slivers within the hole's y/z bands.
  if (in.x0 > x0) out.push_back(Box3{x0, in.y0, in.z0, in.x0, in.y1, in.z1});
  if (in.x1 < x1) out.push_back(Box3{in.x1, in.y0, in.z0, x1, in.y1, in.z1});
  return out;
}

std::string Box3::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Box3& b) {
  return os << '[' << b.x0 << ',' << b.y0 << ',' << b.z0 << ' ' << b.width()
            << 'x' << b.height() << 'x' << b.depth() << ']';
}

std::int64_t totalVolume(const std::vector<Box3>& boxes) {
  std::int64_t v = 0;
  for (const Box3& b : boxes) v += b.volume();
  return v;
}

bool exactlyCovers(const Box3& whole, const std::vector<Box3>& parts) {
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].empty()) return false;
    if (!whole.contains(parts[i])) return false;
    for (std::size_t j = i + 1; j < parts.size(); ++j) {
      if (!Box3::intersection(parts[i], parts[j]).empty()) return false;
    }
    sum += parts[i].volume();
  }
  return sum == whole.volume();
}

}  // namespace mqs
