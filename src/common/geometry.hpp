// 2-D integer geometry used throughout the system.
//
// All rectangles are half-open: a Rect covers pixels with
// x in [x0, x1) and y in [y0, y1). Datasets, chunks, query regions and
// cached-result bounding boxes are all expressed in base-resolution pixel
// coordinates of the dataset they belong to.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mqs {

struct Point {
  std::int64_t x = 0;
  std::int64_t y = 0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Half-open axis-aligned rectangle [x0,x1) x [y0,y1).
struct Rect {
  std::int64_t x0 = 0;
  std::int64_t y0 = 0;
  std::int64_t x1 = 0;
  std::int64_t y1 = 0;

  static Rect ofSize(std::int64_t x, std::int64_t y, std::int64_t w,
                     std::int64_t h) {
    return Rect{x, y, x + w, y + h};
  }

  [[nodiscard]] std::int64_t width() const { return x1 - x0; }
  [[nodiscard]] std::int64_t height() const { return y1 - y0; }
  [[nodiscard]] bool empty() const { return x1 <= x0 || y1 <= y0; }
  /// Area in pixels; empty rectangles (including inverted ones) have area 0.
  [[nodiscard]] std::int64_t area() const {
    return empty() ? 0 : width() * height();
  }

  [[nodiscard]] bool contains(Point p) const {
    return p.x >= x0 && p.x < x1 && p.y >= y0 && p.y < y1;
  }
  [[nodiscard]] bool contains(const Rect& r) const {
    return !r.empty() && r.x0 >= x0 && r.y0 >= y0 && r.x1 <= x1 && r.y1 <= y1;
  }
  [[nodiscard]] bool intersects(const Rect& r) const {
    return !intersection(*this, r).empty();
  }

  /// Intersection of two rectangles (possibly empty).
  static Rect intersection(const Rect& a, const Rect& b);

  /// Smallest rectangle covering both inputs (empty inputs are ignored).
  static Rect bounding(const Rect& a, const Rect& b);

  /// Translate by (dx, dy).
  [[nodiscard]] Rect shifted(std::int64_t dx, std::int64_t dy) const {
    return Rect{x0 + dx, y0 + dy, x1 + dx, y1 + dy};
  }

  /// This rectangle minus `hole`, decomposed into at most four disjoint
  /// rectangles (the classic guillotine split around the intersection).
  /// If the hole does not intersect, returns {*this}; if it covers, {}.
  [[nodiscard]] std::vector<Rect> subtract(const Rect& hole) const;

  [[nodiscard]] std::string str() const;

  friend bool operator==(const Rect&, const Rect&) = default;
};

std::ostream& operator<<(std::ostream& os, const Rect& r);

/// Total area of a set of pairwise-disjoint rectangles.
std::int64_t totalArea(const std::vector<Rect>& rects);

/// True if the rectangles in `parts` are pairwise disjoint and their union
/// equals `whole`. O(n^2) — intended for tests and checked paths.
bool exactlyCovers(const Rect& whole, const std::vector<Rect>& parts);

/// Half-open axis-aligned box [x0,x1) x [y0,y1) x [z0,z1) — the 3-D
/// counterpart of Rect, used by the volume-visualization application.
struct Box3 {
  std::int64_t x0 = 0, y0 = 0, z0 = 0;
  std::int64_t x1 = 0, y1 = 0, z1 = 0;

  static Box3 ofSize(std::int64_t x, std::int64_t y, std::int64_t z,
                     std::int64_t w, std::int64_t h, std::int64_t d) {
    return Box3{x, y, z, x + w, y + h, z + d};
  }

  [[nodiscard]] std::int64_t width() const { return x1 - x0; }
  [[nodiscard]] std::int64_t height() const { return y1 - y0; }
  [[nodiscard]] std::int64_t depth() const { return z1 - z0; }
  [[nodiscard]] bool empty() const {
    return x1 <= x0 || y1 <= y0 || z1 <= z0;
  }
  /// Voxel count; empty boxes have volume 0.
  [[nodiscard]] std::int64_t volume() const {
    return empty() ? 0 : width() * height() * depth();
  }

  [[nodiscard]] bool contains(const Box3& b) const {
    return !b.empty() && b.x0 >= x0 && b.y0 >= y0 && b.z0 >= z0 &&
           b.x1 <= x1 && b.y1 <= y1 && b.z1 <= z1;
  }

  static Box3 intersection(const Box3& a, const Box3& b);

  /// The xy footprint as a Rect (used for 2-D spatial indexing of
  /// volume predicates).
  [[nodiscard]] Rect footprint() const { return Rect{x0, y0, x1, y1}; }

  /// This box minus `hole`, decomposed into at most six disjoint boxes
  /// (z slabs, then y bands, then x slivers).
  [[nodiscard]] std::vector<Box3> subtract(const Box3& hole) const;

  [[nodiscard]] std::string str() const;

  friend bool operator==(const Box3&, const Box3&) = default;
};

std::ostream& operator<<(std::ostream& os, const Box3& b);

/// Total volume of a set of pairwise-disjoint boxes.
std::int64_t totalVolume(const std::vector<Box3>& boxes);

/// True if the boxes in `parts` are pairwise disjoint and their union
/// equals `whole`. O(n^2) — for tests and checked paths.
bool exactlyCovers(const Box3& whole, const std::vector<Box3>& parts);

}  // namespace mqs
