# Empty compiler generated dependencies file for movie_batch.
# This may be replaced when dependencies are built.
