// A closable MPMC blocking queue used by the threaded runtime.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace mqs {

/// Unbounded multi-producer multi-consumer queue. After close(), pushes are
/// rejected and pops drain the remaining items, then return std::nullopt.
template <typename T>
class BlockingQueue {
 public:
  /// Returns false if the queue is closed.
  bool push(T value) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> tryPop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mqs
