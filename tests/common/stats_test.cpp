#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace mqs {
namespace {

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stddev, Basics) {
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({7.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({2.0, 4.0}), std::sqrt(2.0));
}

TEST(Percentile, EndpointsAndMedian) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Percentile, InterpolatesBetweenSamples) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 75), 7.5);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  EXPECT_THROW(percentile({}, 50), CheckFailure);
  EXPECT_THROW(percentile({1.0}, -1), CheckFailure);
  EXPECT_THROW(percentile({1.0}, 101), CheckFailure);
}

TEST(TrimmedMean, NoTrimEqualsMean) {
  const std::vector<double> xs = {4.0, 1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(trimmedMean(xs, 1.0), mean(xs));
}

TEST(TrimmedMean, DiscardsExtremes) {
  // 40 samples: 2.5% of 40 = 1 sample discarded from each side.
  std::vector<double> xs(38, 10.0);
  xs.push_back(-1000.0);
  xs.push_back(+1000.0);
  EXPECT_DOUBLE_EQ(trimmedMean95(xs), 10.0);
}

TEST(TrimmedMean, SmallSampleKeepsEverything) {
  // With < 40 samples, 2.5% floor is 0: identical to the mean.
  const std::vector<double> xs = {1.0, 2.0, 3.0, 100.0};
  EXPECT_DOUBLE_EQ(trimmedMean95(xs), mean(xs));
}

TEST(TrimmedMean, IsRobustToOutliersUnlikeMean) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.uniformReal(9.0, 11.0));
  std::vector<double> contaminated = xs;
  for (int i = 0; i < 5; ++i) contaminated.push_back(1e6);
  const double clean = trimmedMean95(xs);
  const double robust = trimmedMean95(contaminated);
  EXPECT_NEAR(robust, clean, 0.5);
  EXPECT_GT(mean(contaminated), 1000.0);  // the plain mean is destroyed
}

TEST(TrimmedMean, RejectsEmpty) {
  EXPECT_THROW(trimmedMean({}, 0.95), CheckFailure);
  EXPECT_THROW(trimmedMean({1.0}, 0.0), CheckFailure);
}

TEST(RunningStats, MatchesBatchStatistics) {
  Rng rng(99);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniformReal(-5, 5);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), 1000u);
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(rs.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace mqs
