# Empty compiler generated dependencies file for mqs_index.
# This may be replaced when dependencies are built.
