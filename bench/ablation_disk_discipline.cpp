// Ablation: disk-queue model. Figure 4's degradation is driven by seek
// thrash under interleaved query streams; this sweep compares the default
// analytic k-stream approximation against the explicit positional head
// model with FIFO and elevator (C-SCAN) disciplines. The elevator — which
// is what the Page Space Manager's "requests are reordered" buys — should
// soften (but not remove) the degradation past the optimum thread count.
#include "bench_common.hpp"

using namespace mqs;

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "ablation_disk_discipline");
  ctx.printHeader();

  const auto threadCounts = ctx.options().getIntList("threads", {1, 2, 4, 8, 16});
  const std::vector<std::string> models = {"kstream", "fifo", "elevator"};

  for (const vm::VMOp op : {vm::VMOp::Subsample, vm::VMOp::Average}) {
    Table table(std::string("trimmed-mean response (s) vs #threads by disk model (SJF), ") +
                bench::opName(op));
    table.setColumns({"threads", "kstream", "fifo", "elevator",
                      "elev-seq-frac"});
    for (const auto threads : threadCounts) {
      std::vector<std::string> row = {std::to_string(threads)};
      double elevSeqFrac = 0.0;
      for (const auto& model : models) {
        auto cfg = ctx.server("SJF", static_cast<int>(threads), 64 * MiB,
                              32 * MiB);
        cfg.ioModel = model;
        const auto result =
            driver::SimExperiment::runInteractive(ctx.workload(op), cfg);
        row.push_back(formatDouble(result.summary.trimmedResponse, 3));
        if (model == "elevator" && result.io.pageReads > 0) {
          elevSeqFrac = static_cast<double>(result.io.sequentialReads) /
                        static_cast<double>(result.io.pageReads);
        }
      }
      row.push_back(formatDouble(elevSeqFrac, 2));
      table.addRow(std::move(row));
    }
    ctx.emit(table);
  }
  return 0;
}
