// Lock-contention accounting: per-subsystem counters of contended mutex
// acquisitions and the wall time spent blocked in them.
//
// Mutex::lock() (common/thread_annotations.hpp) first tries the fast
// uncontended path; only when that fails does it record a contended
// acquisition and time the blocking lock() call. The uncontended path pays
// nothing beyond the try_lock it performs anyway, so the counters are
// always on — contention is observable in every build, which is the whole
// point of measuring it.
//
// Counters are keyed by lockorder::Rank (the subsystem a mutex belongs
// to); unranked locks aggregate under kUnranked. The tracer exports them
// as LOCK_WAIT counters (trace::emitLockWaitCounters) and the contention
// bench reads snapshots directly.
#pragma once

#include <cstdint>

#include "common/lock_order.hpp"

namespace mqs::lockstats {

/// One subsystem's contention totals since process start (monotonic).
struct Counts {
  std::uint64_t contended = 0;  ///< acquisitions that had to block
  std::uint64_t waitNanos = 0;  ///< wall nanoseconds spent blocked
};

/// Record one contended acquisition of a lock with rank `rank` that
/// blocked for `waitNanos` wall nanoseconds. Called by Mutex::lock() on
/// the slow path only; relaxed atomics, safe from any thread.
void recordContended(lockorder::Rank rank, std::uint64_t waitNanos) noexcept;

/// Snapshot of one subsystem's totals (relaxed reads; monotonic between
/// calls, approximate under concurrency).
[[nodiscard]] Counts countsFor(lockorder::Rank rank) noexcept;

/// Snapshot of the totals summed over every rank.
[[nodiscard]] Counts totalCounts() noexcept;

}  // namespace mqs::lockstats
