// A closable MPMC blocking queue used by the threaded runtime.
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "common/thread_annotations.hpp"

namespace mqs {

/// Unbounded multi-producer multi-consumer queue.
///
/// Closed-state contract (asserted by queue_pool_test):
///  * close() is idempotent and may race with any push/pop/tryPop.
///  * push() after (or concurrent with) close() either enqueues the item —
///    it won and returns true — or returns false; a false return means the
///    item was NOT enqueued and will never be popped.
///  * pop() drains every item whose push returned true, then returns
///    std::nullopt; it never drops an accepted item and never returns
///    nullopt while accepted items remain.
///  * closed() is advisory for racing producers: true means pushes will be
///    rejected from now on (close() has happened-before the call).
template <typename T>
class BlockingQueue {
 public:
  /// Returns false if the queue is closed (the item was not enqueued).
  bool push(T value) {
    {
      MutexLock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) cv_.wait(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> tryPop() {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  void close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notifyAll();
  }

  [[nodiscard]] bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_{lockorder::Rank::kBlockingQueue, "BlockingQueue::mu_"};
  CondVar cv_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace mqs
