// Open-loop wire-protocol load generator (DESIGN.md §11).
//
// Drives a real NetServer over TCP with many concurrent connections. Each
// connection runs a sender thread (schedules arrivals from its share of
// the configured arrival process, fires Query frames at those instants
// regardless of server progress — the open loop) and a receiver thread
// (classifies every response: Result, Failed, Rejected-by-reason, Error).
//
// Latency is measured from the *scheduled* arrival, not the actual send:
// when a sender falls behind (slow socket, server back-pressure), the
// backlog counts against the server, which is the open-loop convention
// that avoids coordinated omission. Per-connection results merge exactly
// (integer counters, mergeable histograms) into one report per run.
#pragma once

#include <cstdint>
#include <string>

#include "loadgen/arrival.hpp"
#include "loadgen/latency_histogram.hpp"
#include "loadgen/workload.hpp"
#include "net/codecs.hpp"

namespace mqs::loadgen {

struct LoadGenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int connections = 4;
  double durationSec = 5.0;
  /// Aggregate arrival process; each connection runs an independent copy
  /// at ratePerSec / connections, so the offered load sums back to it.
  ArrivalConfig arrival;
  WorkloadConfig workload;
  std::uint64_t seed = 1;
  double connectTimeoutSec = 5.0;
  /// Per-receive bound; also the tick at which drain progress is checked.
  double ioTimeoutSec = 2.0;
  /// Extra time after the last scheduled send to wait for stragglers;
  /// responses still missing then count as timeouts.
  double drainTimeoutSec = 30.0;
};

/// One run's outcome tallies. The fate classes mirror the server's
/// admission vocabulary, observed from the client side of the wire:
/// offered == completed + failed + rejected* + shedDeadline + errors +
/// timeouts + sendFailures once the run has drained.
struct LoadGenReport {
  std::uint64_t offered = 0;    ///< Query frames scheduled and sent (or
                                ///< attempted — send failures included)
  std::uint64_t completed = 0;  ///< Result frames (goodput)
  std::uint64_t failed = 0;     ///< Failed frames (terminal FAILED)
  std::uint64_t rejectedQueueFull = 0;  ///< Rejected, reason QueueFull
  std::uint64_t rejectedQuota = 0;      ///< Rejected, reason ClientQuota
  std::uint64_t shedDeadline = 0;       ///< Rejected, reason DeadlineShed
  std::uint64_t errors = 0;             ///< Error frames / unknown reasons
  std::uint64_t timeouts = 0;      ///< responses never received
  std::uint64_t sendFailures = 0;  ///< send() itself failed
  double elapsedSec = 0.0;  ///< run start to the last settled response
                            ///< (>= durationSec); excludes idle receive
                            ///< ticks after the final response

  LatencyHistogram latency;         ///< completed (Result) responses only
  LatencyHistogram latencySettled;  ///< every settled response, any fate

  [[nodiscard]] std::uint64_t rejected() const {
    return rejectedQueueFull + rejectedQuota;
  }
  /// Completed results per second of elapsed run time.
  [[nodiscard]] double goodputPerSec() const {
    return elapsedSec > 0.0
               ? static_cast<double>(completed) / elapsedSec
               : 0.0;
  }
  /// Fraction of offered load the server refused to spend compute on.
  [[nodiscard]] double shedRate() const {
    return offered > 0
               ? static_cast<double>(rejected() + shedDeadline) /
                     static_cast<double>(offered)
               : 0.0;
  }

  /// Exact merge (per-connection shards -> run total).
  void merge(const LoadGenReport& other);

  /// JSON object with the counters, derived rates, latency percentiles,
  /// and the full completed-latency histogram.
  [[nodiscard]] std::string toJson() const;
};

/// Run one open-loop load session against a live server. Blocking; spawns
/// 2 threads per connection internally.
[[nodiscard]] LoadGenReport runLoad(const LoadGenConfig& cfg,
                                    const net::CodecRegistry* codecs);

}  // namespace mqs::loadgen
