file(REMOVE_RECURSE
  "CMakeFiles/ablation_ds_eviction.dir/ablation_ds_eviction.cpp.o"
  "CMakeFiles/ablation_ds_eviction.dir/ablation_ds_eviction.cpp.o.d"
  "ablation_ds_eviction"
  "ablation_ds_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ds_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
