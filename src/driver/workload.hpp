// Client emulator workloads (§5).
//
// The paper drives the server with 16 emulated clients, each issuing 16
// queries for 1024x1024 output images at various magnification levels over
// three datasets (8/6/2 client split). We reproduce that structure with a
// browsing model: each client pans/zooms around a focus point and
// occasionally jumps to one of the dataset's shared hotspots (the classroom
// scenario: many students inspecting the same features), which is what
// creates inter-client overlap for the scheduler to exploit.
//
// All query origins snap to a grid that every zoom level divides, so any
// two results over the same dataset/op are mutually alignable (the Eq. 4
// alignment precondition).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "vm/vm_predicate.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs::driver {

struct DatasetSpec {
  std::int64_t width = 30000;
  std::int64_t height = 30000;
  std::int64_t chunkSide = 146;  ///< ~64KB pages at 3 B/pixel
  std::uint64_t seed = 1;        ///< synthetic pixel seed
};

struct WorkloadConfig {
  std::vector<DatasetSpec> datasets = {DatasetSpec{.seed = 11},
                                       DatasetSpec{.seed = 22},
                                       DatasetSpec{.seed = 33}};
  /// Clients per dataset (paper: 8, 6, 2). Must match datasets.size().
  std::vector<int> clientsPerDataset = {8, 6, 2};
  int queriesPerClient = 16;

  std::int64_t outputSide = 1024;  ///< output images are outputSide^2 RGB
  std::vector<std::uint32_t> zoomLevels = {2, 4, 8, 16, 32};
  std::vector<double> zoomWeights = {1.0, 2.0, 3.0, 2.0, 1.0};

  vm::VMOp op = vm::VMOp::Subsample;

  /// Origin snap grid; must be a multiple of every zoom level.
  std::int64_t alignGrid = 32;
  /// Probability the next query continues browsing near the previous one
  /// (pan / zoom step) rather than jumping to a shared hotspot.
  double browseProbability = 0.6;
  int hotspotsPerDataset = 4;
  /// Zipf exponent for hotspot selection (0 = uniform, the historical
  /// behaviour). With s > 0 hotspot i is drawn with weight 1/(i+1)^s, so
  /// revisits concentrate on the first few features — the skewed
  /// popularity profile the spill-tier ablation leans on.
  double hotspotZipfS = 0.0;

  /// Mean think time between a result and the client's next query
  /// (exponential; 0 = the paper's zero-think emulated clients).
  double thinkTimeMeanSec = 0.0;

  std::uint64_t seed = 42;
};

struct ClientWorkload {
  int client = 0;
  storage::DatasetId dataset = 0;
  std::vector<vm::VMPredicate> queries;
};

class WorkloadGenerator {
 public:
  /// Register the config's datasets in `semantics` (ids 0..n-1) and
  /// generate per-client query streams. Deterministic in config.seed.
  static std::vector<ClientWorkload> generate(const WorkloadConfig& cfg,
                                              vm::VMSemantics& semantics);

  /// Flattened round-robin interleaving of all client streams — the order
  /// a batch submission presents queries to the server.
  static std::vector<vm::VMPredicate> interleave(
      const std::vector<ClientWorkload>& workloads);
};

}  // namespace mqs::driver
