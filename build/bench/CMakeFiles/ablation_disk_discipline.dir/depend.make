# Empty dependencies file for ablation_disk_discipline.
# This may be replaced when dependencies are built.
