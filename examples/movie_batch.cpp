// Batch scenario (§5): "if we want to create a movie from a case study
// using VM, we may submit a set of queries, each of which corresponds to a
// visualization of the slide being studied. In that case, it is important
// to decrease the overall execution time of the batch."
//
// Generates a camera path (pan across the slide while zooming in), submits
// every frame as one batch, and compares ranking strategies on total
// execution time in the deterministic DES. Consecutive frames overlap
// heavily, so locality-aware rankings shine. Optionally renders a few
// frames to PPM via the threaded runtime.
//
//   ./movie_batch [--frames 48] [--write-frames /tmp]
#include <iostream>
#include <vector>

#include "common/bytes.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "sched/policy.hpp"
#include "server/query_server.hpp"
#include "sim/sim_server.hpp"
#include "storage/synthetic_source.hpp"
#include "vm/image.hpp"
#include "vm/vm_executor.hpp"

using namespace mqs;

namespace {

/// Camera path: pan diagonally while stepping the zoom 8 -> 4 -> 2.
std::vector<vm::VMPredicate> cameraPath(storage::DatasetId ds, int frames,
                                        std::int64_t slideSide) {
  std::vector<vm::VMPredicate> out;
  const std::int64_t outSide = 256;
  for (int f = 0; f < frames; ++f) {
    const double t = static_cast<double>(f) / std::max(1, frames - 1);
    const std::uint32_t zoom = t < 0.33 ? 8 : (t < 0.66 ? 4 : 2);
    const std::int64_t view = outSide * static_cast<std::int64_t>(zoom);
    const std::int64_t span = slideSide - view;
    auto snap = [](std::int64_t v) { return (v / 16) * 16; };
    const std::int64_t x = snap(static_cast<std::int64_t>(t * static_cast<double>(span)));
    const std::int64_t y = snap(static_cast<std::int64_t>(t * t * static_cast<double>(span)));
    out.emplace_back(ds, Rect::ofSize(x, y, view, view), zoom,
                     vm::VMOp::Average);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int frames = static_cast<int>(opts.getInt("frames", 48));
  constexpr std::int64_t kSlideSide = 8192;

  vm::VMSemantics semantics;
  const auto dsid =
      semantics.addDataset(index::ChunkLayout(kSlideSide, kSlideSide, 146));
  const auto path = cameraPath(dsid, frames, kSlideSide);
  std::cout << "movie batch: " << frames
            << " frames along a pan+zoom camera path\n\n";

  // --- compare strategies on batch completion time (virtual time) -------
  Table table("movie batch — total execution time by policy (DES, 4 threads)");
  table.setColumns({"policy", "batch-total(s)", "avg-overlap",
                    "bytes-from-disk"});
  for (const auto& policy : sched::allPolicyNames()) {
    vm::VMSemantics sem;
    (void)sem.addDataset(index::ChunkLayout(kSlideSide, kSlideSide, 146));
    sim::Simulator simr;
    sim::SimConfig cfg;
    cfg.threads = 4;
    cfg.policy = policy;
    cfg.dsBytes = opts.getBytes("ds", 8 * MiB);
    cfg.psBytes = opts.getBytes("ps", 4 * MiB);
    sim::SimServer server(simr, &sem, cfg);
    for (const auto& q : path) {
      server.submit(std::make_unique<vm::VMPredicate>(q), 0);
    }
    simr.run();
    const auto summary = metrics::summarize(server.collector().records());
    table.addRow({policy, formatDouble(summary.makespan, 3),
                  formatDouble(summary.avgOverlap, 3),
                  formatBytes(summary.totalDiskBytes)});
  }
  table.print(std::cout);

  // --- optionally render a few real frames ------------------------------
  if (opts.has("write-frames")) {
    const std::string dir = opts.getString("write-frames", ".");
    storage::SyntheticSlideSource slide(semantics.layout(dsid), 7);
    vm::VMExecutor executor(&semantics);
    server::ServerConfig cfg;
    cfg.threads = 4;
    cfg.policy = "CNBF";
    server::QueryServer server(&semantics, &executor, cfg);
    server.attach(dsid, &slide);
    std::vector<std::future<server::QueryResult>> futures;
    const int toRender = std::min(frames, 8);
    for (int f = 0; f < toRender; ++f) {
      futures.push_back(
          server.submit(std::make_unique<vm::VMPredicate>(path[static_cast<std::size_t>(f)]), 0));
    }
    for (int f = 0; f < toRender; ++f) {
      const auto result = futures[static_cast<std::size_t>(f)].get();
      const auto& q = path[static_cast<std::size_t>(f)];
      const auto img =
          vm::ImageRGB::fromBytes(result.bytes, q.outWidth(), q.outHeight());
      const std::string file = dir + "/frame_" + std::to_string(f) + ".ppm";
      std::cout << "wrote " << file << ": " << vm::writePpm(img, file) << "\n";
    }
    server.shutdown();
  }
  return 0;
}
