#include "vol/synthetic_volume.hpp"

#include "common/check.hpp"

namespace mqs::vol {

std::uint8_t syntheticVoxel(std::uint64_t seed, std::int64_t x,
                            std::int64_t y, std::int64_t z) {
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<std::uint64_t>(y) * 0xc2b2ae3d27d4eb4fULL;
  h ^= static_cast<std::uint64_t>(z) * 0xd6e8feb86659fd93ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<std::uint8_t>(h & 0xff);
}

SyntheticVolumeSource::SyntheticVolumeSource(VolumeLayout layout,
                                             std::uint64_t seed)
    : layout_(layout), seed_(seed) {}

storage::PageId SyntheticVolumeSource::pageCount() const {
  return layout_.brickCount();
}

std::size_t SyntheticVolumeSource::pageBytes(storage::PageId page) const {
  return layout_.brickBytes(page);
}

void SyntheticVolumeSource::readPage(storage::PageId page,
                                     std::span<std::byte> out) const {
  const Box3 b = layout_.brickBox(page);
  const auto need = static_cast<std::size_t>(b.volume());
  MQS_CHECK_MSG(out.size() >= need, "readPage buffer too small");
  std::size_t i = 0;
  for (std::int64_t z = b.z0; z < b.z1; ++z) {
    for (std::int64_t y = b.y0; y < b.y1; ++y) {
      for (std::int64_t x = b.x0; x < b.x1; ++x) {
        out[i++] = static_cast<std::byte>(syntheticVoxel(seed_, x, y, z));
      }
    }
  }
}

}  // namespace mqs::vol
