// Deterministic random number generation for workload synthesis.
//
// All experiment randomness flows through Rng so that a (seed, parameters)
// pair fully determines a workload. The core generator is xoshiro256**,
// seeded via SplitMix64 — fast, well-distributed, and reproducible across
// platforms (unlike std::default_random_engine).
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <span>

#include "common/check.hpp"

namespace mqs {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), plus convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6d71735f73656564ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    MQS_CHECK(lo <= hi);
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(next());  // full range
    // Debiased modulo (Lemire-style rejection).
    const std::uint64_t threshold = (0 - range) % range;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return lo + static_cast<std::int64_t>(r % range);
    }
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniformReal(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  bool bernoulli(double p) { return uniform01() < p; }

  /// Index drawn according to non-negative weights (at least one positive).
  std::size_t weightedIndex(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) {
      MQS_CHECK(w >= 0.0);
      total += w;
    }
    MQS_CHECK(total > 0.0);
    double x = uniform01() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0.0) return i;
    }
    return weights.size() - 1;
  }

  std::size_t weightedIndex(std::initializer_list<double> weights) {
    return weightedIndex(std::span<const double>(weights.begin(), weights.size()));
  }

  /// Derive an independent child generator (for per-client streams).
  Rng fork() { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

}  // namespace mqs
