#include "trace/analysis.hpp"

#include <algorithm>

namespace mqs::trace {

namespace {

/// Sort rank for timestamp ties: a QUEUED begin (the one event emitted on
/// the submitting thread) precedes everything else at the same instant; a
/// span end at the same instant as a sibling begin keeps emission order
/// via stable sort, which preserves per-buffer order for same-tid events.
int tieRank(const Event& e) {
  if (e.type == EventType::SpanBegin && e.spanKind() == SpanKind::Queued) {
    return 0;
  }
  return 1;
}

}  // namespace

std::vector<Event> eventsForQuery(const std::vector<Event>& all,
                                  std::uint64_t queryId) {
  std::vector<Event> out;
  for (const Event& e : all) {
    if (e.type != EventType::Counter && e.queryId == queryId) {
      out.push_back(e);
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return tieRank(a) < tieRank(b);
  });
  return out;
}

SpanTree buildSpanTree(const std::vector<Event>& queryEvents) {
  SpanTree tree;
  struct Open {
    std::size_t spanIdx;
    SpanKind kind;
    std::uint8_t depth;
  };
  std::vector<Open> stack;
  double lastTs = -1.0;
  for (const Event& e : queryEvents) {
    if (e.type == EventType::Counter) continue;
    if (e.ts < lastTs) {
      tree.monotonic = false;
      if (tree.error.empty()) {
        tree.error = "timestamp decreased at " + std::string(toString(
                         e.spanKind()));
      }
    }
    lastTs = std::max(lastTs, e.ts);
    if (e.type == EventType::SpanBegin) {
      Span s;
      s.kind = e.spanKind();
      s.begin = e.ts;
      s.end = e.ts;
      s.value = e.value;
      s.depth = e.depth;
      s.flags = e.flags;
      s.level = static_cast<int>(stack.size());
      stack.push_back({tree.spans.size(), s.kind, s.depth});
      tree.spans.push_back(s);
    } else {
      if (stack.empty() || stack.back().kind != e.spanKind() ||
          stack.back().depth != e.depth) {
        tree.wellNested = false;
        if (tree.error.empty()) {
          tree.error = "unmatched span end " +
                       std::string(toString(e.spanKind()));
        }
        continue;
      }
      Span& s = tree.spans[stack.back().spanIdx];
      s.end = e.ts;
      s.flags |= e.flags;
      stack.pop_back();
    }
  }
  if (!stack.empty()) {
    tree.wellNested = false;
    if (tree.error.empty()) {
      tree.error = "span never closed: " +
                   std::string(toString(stack.back().kind));
    }
  }
  return tree;
}

std::string planShapeOf(const std::vector<Event>& queryEvents) {
  std::string out;
  for (const Event& e : queryEvents) {
    if (e.type != EventType::SpanBegin || e.depth != 0) continue;
    const SpanKind kind = e.spanKind();
    char c = 0;
    if (kind == SpanKind::Project) {
      // Fold wins first (a folded projection waits on the scan owner, so
      // its span can also look executing-sourced), then spill before the
      // executing/cached split: a restore step is a projection, but
      // sourced from the tier.
      c = (e.flags & kFlagFoldSource) != 0        ? 'F'
          : (e.flags & kFlagSpillSource) != 0     ? 'S'
          : (e.flags & kFlagExecutingSource) != 0 ? 'X'
                                                  : 'C';
    } else if (kind == SpanKind::Compute) {
      c = 'R';
    } else {
      continue;
    }
    if (!out.empty()) out += '|';
    out += c;
    if (c != 'R') out += std::to_string(e.value);
  }
  return out;
}

std::vector<std::uint64_t> queryIds(const std::vector<Event>& all) {
  std::vector<std::uint64_t> ids;
  for (const Event& e : all) {
    if (e.type == EventType::Counter) continue;
    if (std::find(ids.begin(), ids.end(), e.queryId) == ids.end()) {
      ids.push_back(e.queryId);
    }
  }
  return ids;
}

double totalDuration(const SpanTree& tree, SpanKind kind) {
  double total = 0.0;
  for (const Span& s : tree.spans) {
    if (s.kind == kind) total += s.duration();
  }
  return total;
}

}  // namespace mqs::trace
