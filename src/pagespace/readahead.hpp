// Bounded-window fetch pipeline over a known page sequence.
//
// Executors enumerate all chunks a query touches up front; a
// ReadaheadStream then keeps up to `window` upcoming pages in flight on
// the Page Space Manager's I/O pool while the caller decodes the current
// one — the real-execution analogue of the simulator's `prefetchPages`
// readahead (SimServer::computePart). Window 0 degrades to plain blocking
// fetches. The destructor releases claims on pages that were prefetched
// but never consumed (e.g. when decoding throws), so no page stays pinned
// past the query.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "pagespace/page_space_manager.hpp"

namespace mqs::pagespace {

/// Default executor readahead depth, mirroring the simulator's
/// `prefetchPages` knob so sim and real-server configs stay comparable.
inline constexpr int kDefaultReadaheadPages = 4;

class ReadaheadStream {
 public:
  ReadaheadStream(PageSpaceManager& ps, std::vector<storage::PageKey> keys,
                  int window)
      : ps_(ps),
        keys_(std::move(keys)),
        window_(static_cast<std::size_t>(std::max(0, window))) {}

  ReadaheadStream(const ReadaheadStream&) = delete;
  ReadaheadStream& operator=(const ReadaheadStream&) = delete;

  ~ReadaheadStream() {
    for (std::size_t j = pos_; j < issued_; ++j) {
      ps_.releaseClaim(keys_[j]);
    }
  }

  [[nodiscard]] bool done() const { return pos_ >= keys_.size(); }
  [[nodiscard]] std::size_t size() const { return keys_.size(); }

  /// Blocking fetch of the next page; issues prefetches so that the
  /// following `window` pages are in flight while the caller decodes.
  PagePtr next() {
    MQS_CHECK_MSG(pos_ < keys_.size(), "ReadaheadStream exhausted");
    if (window_ > 0) {
      const std::size_t target =
          std::min(keys_.size(), pos_ + 1 + window_);
      for (; issued_ < target; ++issued_) {
        ps_.prefetch(keys_[issued_]);
      }
    }
    // fetch() consumes the current key's claim even when it throws (its
    // failure contract), so advance past it on both paths; the destructor
    // then releases exactly the prefetched-but-never-fetched tail.
    const std::size_t cur = pos_++;
    return ps_.fetch(keys_[cur]);
  }

 private:
  PageSpaceManager& ps_;
  std::vector<storage::PageKey> keys_;
  std::size_t window_;
  std::size_t pos_ = 0;
  std::size_t issued_ = 0;
};

}  // namespace mqs::pagespace
