file(REMOVE_RECURSE
  "CMakeFiles/page_space_manager_test.dir/pagespace/page_space_manager_test.cpp.o"
  "CMakeFiles/page_space_manager_test.dir/pagespace/page_space_manager_test.cpp.o.d"
  "page_space_manager_test"
  "page_space_manager_test.pdb"
  "page_space_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_space_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
