file(REMOVE_RECURSE
  "CMakeFiles/volume_explorer.dir/volume_explorer.cpp.o"
  "CMakeFiles/volume_explorer.dir/volume_explorer.cpp.o.d"
  "volume_explorer"
  "volume_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volume_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
