#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/blocking_queue.hpp"
#include "common/thread_pool.hpp"

namespace mqs {
namespace {

TEST(BlockingQueue, FifoOrderSingleThread) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BlockingQueue, TryPopEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.tryPop().has_value());
  q.push(7);
  EXPECT_EQ(q.tryPop(), 7);
}

TEST(BlockingQueue, CloseDrainsThenReturnsNullopt) {
  BlockingQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));  // rejected after close
  EXPECT_EQ(q.pop(), 1);    // drains existing items
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::jthread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
}

TEST(BlockingQueue, ManyProducersManyConsumers) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4, kPerProducer = 1000, kConsumers = 4;
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  {
    std::vector<std::jthread> threads;
    for (int c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&] {
        while (auto v = q.pop()) {
          sum += *v;
          ++popped;
        }
      });
    }
    {
      std::vector<std::jthread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&] {
          for (int i = 1; i <= kPerProducer; ++i) q.push(i);
        });
      }
    }
    q.close();
  }
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  EXPECT_EQ(sum.load(),
            static_cast<long>(kProducers) * kPerProducer * (kPerProducer + 1) / 2);
}

TEST(ThreadPool, ExecutesAllSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(pool.submit([&] { ++count; }));
    }
  }  // destructor drains + joins
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitWithResult) {
  ThreadPool pool(2);
  auto f = pool.submitWithResult([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, RejectsAfterShutdown) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, ParallelismActuallyHappens) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submitWithResult([&] {
      const int cur = ++concurrent;
      int expected = peak.load();
      while (cur > expected && !peak.compare_exchange_weak(expected, cur)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      --concurrent;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(peak.load(), 2);
}

}  // namespace
}  // namespace mqs
