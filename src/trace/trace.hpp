// Query-lifecycle tracing: an always-compiled, low-overhead span/counter
// stream for both engines.
//
// The paper's evaluation (§5) is entirely about *where query time goes* —
// queue wait vs execution, reuse vs recompute, I/O stalls past the
// thread-count optimum — so every component on the query path emits typed
// events into a shared Tracer:
//
//   spans (per query, well-nested):
//     QUEUED       submit -> dispatch (the scheduler's queue wait)
//     PLAN         reuse planning (query::Planner)
//     WAIT_SOURCE  blocked on a still-executing reuse source's latch
//     PROJECT      one reuse-plan projection step (cached or executing)
//     COMPUTE      one compute-from-raw-data step (plan remainder / raw)
//     IO_STALL     a query thread blocked on device I/O in the Page Space
//     DELIVER      result caching + graph transition + delivery (terminal;
//                  carries the failed flag for FAILED queries)
//
//   counters (global, monotonic):
//     DS_HIT / DS_MISS / DS_EVICT            Data Store reuse events
//     PS_HIT / PS_MISS / PS_EVICT            Page Space residency events
//     PREFETCH_ISSUED / PREFETCH_WASTED      readahead pipeline events
//
// Cost model: each event is one clock read plus one append into a
// per-thread single-writer buffer (a plain store into a pre-allocated
// chunk, published with one release store). With no sink attached — the
// default — every instrumentation site is a null-pointer test; with a sink
// attached but disabled it is one relaxed atomic load. The collector
// (drain()) may run concurrently with writers: chunks are linked with
// acquire/release pointers and event slots are published by a per-buffer
// release counter, so no locks ever appear on the hot path.
//
// Timestamps come from a caller-installed clock so the discrete-event
// engine traces in *virtual* seconds and the threaded server in real
// seconds, while both emit the identical span vocabulary (the sim-vs-real
// trace equivalence test's currency).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/thread_annotations.hpp"

namespace mqs::trace {

enum class SpanKind : std::uint8_t {
  Queued = 0,
  Plan,
  WaitSource,
  Project,
  Compute,
  IoStall,
  Deliver,
};

enum class CounterKind : std::uint8_t {
  DsHit = 0,
  DsMiss,
  DsEvict,
  PsHit,
  PsMiss,
  PsEvict,
  PrefetchIssued,
  PrefetchWasted,
  // Lock-contention exposure per subsystem (common/lock_stats.hpp): the
  // server emits these at shutdown with value = blocked acquisitions, so
  // traces show where query threads waited on shared state.
  LockWaitSched,
  LockWaitDs,
  LockWaitPs,
  // Overload behavior (DESIGN.md §11): admission-control and load-shedding
  // events emitted by the query server. ADMITTED/REJECTED/SHED partition
  // the offered load; QUOTA_HIT counts per-client fairness rejections
  // (a subset of REJECTED); DEADLINE_MISSED counts queries that consumed
  // compute yet finished (or died) past their deadline; QUEUE_DEPTH is a
  // gauge — its value is the admission-queue depth after the event.
  AdmissionAdmitted,
  AdmissionRejected,
  AdmissionShed,
  AdmissionQuotaHit,
  DeadlineMissed,
  AdmissionQueueDepth,
  // Cost-aware caching & spill tier (DESIGN.md §13): DS_SPILL counts blobs
  // demoted to the spill tier, DS_RESTORE counts blobs resurrected from it;
  // DS_SPILL_BYTES is a gauge — its value is the spill tier's resident
  // byte count after the event.
  DsSpill,
  DsRestore,
  DsSpillBytes,
  // Dynamic query folding (DESIGN.md §14). FOLD_SUBSCRIBERS is a gauge —
  // its value is the subscriber count of the scan just published.
  FoldHit,
  FoldSubscribers,
  ScanBytesShared,
};

[[nodiscard]] std::string_view toString(SpanKind kind);
[[nodiscard]] std::string_view toString(CounterKind kind);

enum class EventType : std::uint8_t { SpanBegin = 0, SpanEnd, Counter };

/// Event flags (span events).
inline constexpr std::uint8_t kFlagFailed = 0x1;      ///< DELIVER of a FAILED query
inline constexpr std::uint8_t kFlagCachedSource = 0x2;     ///< PROJECT from cached
inline constexpr std::uint8_t kFlagExecutingSource = 0x4;  ///< PROJECT from executing
inline constexpr std::uint8_t kFlagShed = 0x8;  ///< DELIVER of a SHED query
                                                ///< (dropped pre-compute)
inline constexpr std::uint8_t kFlagSpillSource = 0x10;  ///< PROJECT from the
                                                        ///< spill tier
inline constexpr std::uint8_t kFlagFoldSource = 0x20;  ///< PROJECT from a
                                                       ///< folded shared scan

struct Event {
  double ts = 0.0;            ///< engine seconds (virtual in the simulator)
  std::uint64_t queryId = 0;  ///< span events; 0 for counters
  std::uint64_t value = 0;    ///< bytes covered / counter increment
  std::uint32_t tid = 0;      ///< per-tracer thread index (drain order)
  EventType type = EventType::Counter;
  std::uint8_t kind = 0;   ///< SpanKind or CounterKind
  std::uint8_t depth = 0;  ///< reuse-plan nesting level (span events)
  std::uint8_t flags = 0;

  [[nodiscard]] SpanKind spanKind() const {
    return static_cast<SpanKind>(kind);
  }
  [[nodiscard]] CounterKind counterKind() const {
    return static_cast<CounterKind>(kind);
  }
};

class Tracer {
 public:
  using ClockFn = double (*)(void*);

  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Install the engine clock. Call before events are emitted (servers do
  /// this in their constructors); defaults to process-uptime seconds.
  void setClock(ClockFn fn, void* ctx);

  /// Runtime switch. A disabled tracer keeps every site to one relaxed
  /// load; the overhead guard in bench/micro_server pins this cost.
  void setEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Recompute-cost accounting (DESIGN.md §13): when on, the tracer accrues
  /// each query's COMPUTE/IO_STALL wall time into a per-thread ledger so
  /// the Data Store can stamp every inserted blob with its recompute cost
  /// (the CostAware eviction ranker's benefit metric). Accrual works even
  /// while the tracer is *disabled* — no events are buffered, only the
  /// ledger is touched — so engines can run a private, disabled tracer
  /// purely for cost attribution. Non-cost span kinds on a disabled tracer
  /// still cost exactly one relaxed load.
  void setCostAccounting(bool on) {
    costAccounting_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool costAccounting() const {
    return costAccounting_.load(std::memory_order_relaxed);
  }

  /// Emit a span-begin for query `queryId`; returns the stamped timestamp
  /// (NaN if disabled). `value` carries the step's covered bytes for
  /// PROJECT spans so plan shapes are reconstructible from the stream.
  double beginSpan(std::uint64_t queryId, SpanKind kind, std::uint8_t depth = 0,
                   std::uint64_t value = 0, std::uint8_t flags = 0) {
    const bool costKind =
        kind == SpanKind::Compute || kind == SpanKind::IoStall;
    if (!enabled()) {
      if (costKind && costAccounting()) costBegin(queryId);
      return kDisabledTs;
    }
    const double ts = emit(EventType::SpanBegin,
                           static_cast<std::uint8_t>(kind), queryId, value,
                           depth, flags);
    if (costKind && costAccounting()) costBeginAt(queryId, ts);
    return ts;
  }

  /// Emit a span-end; returns the stamped timestamp (NaN if disabled).
  double endSpan(std::uint64_t queryId, SpanKind kind, std::uint8_t depth = 0,
                 std::uint64_t value = 0, std::uint8_t flags = 0) {
    const bool costKind =
        kind == SpanKind::Compute || kind == SpanKind::IoStall;
    if (!enabled()) {
      if (costKind && costAccounting()) costEnd(queryId);
      return kDisabledTs;
    }
    const double ts = emit(EventType::SpanEnd, static_cast<std::uint8_t>(kind),
                           queryId, value, depth, flags);
    if (costKind && costAccounting()) costEndAt(queryId, ts);
    return ts;
  }

  /// Emit a counter increment (no query attribution).
  void counter(CounterKind kind, std::uint64_t value = 1) {
    if (!enabled()) return;
    (void)emit(EventType::Counter, static_cast<std::uint8_t>(kind), 0, value,
               0, 0);
  }

  /// Snapshot all events published so far, in per-thread emission order
  /// (buffers concatenated in registration order). Safe concurrently with
  /// writers; consumed events are not returned again by later drains.
  [[nodiscard]] std::vector<Event> drain();

  /// Total events published so far (approximate under concurrency).
  [[nodiscard]] std::uint64_t eventCount() const;

  // --- per-thread current-query attribution -------------------------------
  // The Page Space Manager emits IO_STALL spans from deep inside fetch(),
  // where no query id is in scope; the server brackets each query's
  // execution with a QueryScope so the manager can attribute stalls to the
  // thread's current query.

  class QueryScope {
   public:
    QueryScope(Tracer* tracer, std::uint64_t queryId);
    ~QueryScope();
    QueryScope(const QueryScope&) = delete;
    QueryScope& operator=(const QueryScope&) = delete;

   private:
    Tracer* tracer_ = nullptr;
    std::uint64_t queryId_ = 0;
    std::uint64_t savedGen_ = 0;
    std::uint64_t savedId_ = 0;
    bool active_ = false;
  };

  /// The calling thread's current query under this tracer (set by a live
  /// QueryScope), or nullopt.
  [[nodiscard]] std::optional<std::uint64_t> currentThreadQuery() const;

  // --- recompute-cost ledger ----------------------------------------------
  // Per-thread, keyed by query id (the simulator interleaves many queries'
  // spans on one OS thread, so thread identity alone is not enough). Open
  // COMPUTE/IO_STALL spans share one nesting counter per query, so a stall
  // nested inside a compute step is not double-counted: the ledger accrues
  // the *union* of the two kinds' wall time.

  /// Consume the accrued recompute cost of the calling thread's current
  /// query (see QueryScope) and reset it to zero, so successive inserts
  /// within one query each take only their incremental cost. Returns 0 when
  /// no scope is live or nothing accrued. An open cost span contributes its
  /// elapsed-so-far and restarts at now.
  [[nodiscard]] double takeThreadQueryCost();

  /// Drop the calling thread's cost ledger entry for `queryId` (query
  /// retired without consuming it). QueryScope's destructor does this
  /// automatically when cost accounting is on.
  void dropThreadQueryCost(std::uint64_t queryId);

  /// Sentinel timestamp returned by begin/endSpan when disabled.
  static constexpr double kDisabledTs = -1.0;

 private:
  // Per-thread single-writer buffer: a linked list of fixed-size chunks.
  // The writer fills slots and publishes them with a release store of the
  // running count; drain() follows the chunk links with acquire loads and
  // never observes a half-written slot.
  static constexpr std::size_t kChunkCapacity = 4096;

  struct Chunk {
    std::vector<Event> events{kChunkCapacity};
    std::atomic<Chunk*> next{nullptr};
  };

  struct Buffer {
    explicit Buffer(std::uint32_t tidIn) : tid(tidIn) {
      head = std::make_unique<Chunk>();
      tail = head.get();
    }
    std::uint32_t tid;
    std::unique_ptr<Chunk> head;  ///< owns the chain via ownedChunks
    Chunk* tail;                  ///< writer-only
    std::size_t tailUsed = 0;     ///< writer-only slots used in tail
    std::atomic<std::uint64_t> published{0};  ///< total events, release
    std::vector<std::unique_ptr<Chunk>> ownedChunks;  ///< overflow chunks
    // Reader cursor (guarded by the tracer registry mutex).
    Chunk* readChunk = nullptr;
    std::size_t readIdx = 0;
    std::uint64_t consumed = 0;
  };

  double emit(EventType type, std::uint8_t kind, std::uint64_t queryId,
              std::uint64_t value, std::uint8_t depth, std::uint8_t flags);
  Buffer* threadBuffer();
  Buffer* registerThread();

  // Cost-ledger slow paths (out of line; only reached when cost accounting
  // is on and the span kind is COMPUTE or IO_STALL).
  void costBegin(std::uint64_t queryId);           ///< reads the clock itself
  void costBeginAt(std::uint64_t queryId, double ts);
  void costEnd(std::uint64_t queryId);             ///< reads the clock itself
  void costEndAt(std::uint64_t queryId, double ts);

  std::atomic<bool> enabled_{true};
  std::atomic<bool> costAccounting_{false};
  /// Set once before the tracer is shared with other threads (setClock).
  ClockFn clock_;
  void* clockCtx_ = nullptr;  ///< set once before sharing, with clock_
  const std::uint64_t gen_;  ///< process-unique id (thread-local cache key)

  /// Guards buffers_ + every Buffer's reader cursor and ownedChunks (the
  /// cursor fields live in the nested struct, where an annotation cannot
  /// name this member; the contract is enforced by review + this comment).
  mutable Mutex registryMu_{lockorder::Rank::kTraceRegistry,
                            "Tracer::registryMu_"};
  std::vector<std::unique_ptr<Buffer>> buffers_ GUARDED_BY(registryMu_);
};

/// RAII span: begin on construction, end on destruction (exception-safe —
/// a throw inside a step still closes its span, so FAILED queries keep a
/// well-nested trace). No-ops when `tracer` is null or disabled.
class SpanScope {
 public:
  SpanScope(Tracer* tracer, std::uint64_t queryId, SpanKind kind,
            std::uint8_t depth = 0, std::uint64_t value = 0,
            std::uint8_t flags = 0)
      : tracer_(tracer), queryId_(queryId), kind_(kind), depth_(depth),
        value_(value), flags_(flags) {
    if (tracer_ != nullptr) {
      tracer_->beginSpan(queryId_, kind_, depth_, value_, flags_);
    }
  }
  ~SpanScope() { close(); }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Mark the end event (e.g. kFlagFailed on a DELIVER span).
  void setEndFlags(std::uint8_t flags) { flags_ |= flags; }

  /// Close the span now (idempotent).
  void close() {
    if (tracer_ != nullptr) {
      tracer_->endSpan(queryId_, kind_, depth_, value_, flags_);
      tracer_ = nullptr;
    }
  }

 private:
  Tracer* tracer_;
  std::uint64_t queryId_;
  SpanKind kind_;
  std::uint8_t depth_;
  std::uint64_t value_;
  std::uint8_t flags_;
};

}  // namespace mqs::trace
