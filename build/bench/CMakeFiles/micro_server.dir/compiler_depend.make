# Empty compiler generated dependencies file for micro_server.
# This may be replaced when dependencies are built.
