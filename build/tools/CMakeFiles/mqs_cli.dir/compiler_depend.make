# Empty compiler generated dependencies file for mqs_cli.
# This may be replaced when dependencies are built.
