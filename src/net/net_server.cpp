#include "net/net_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/blocking_queue.hpp"
#include "common/check.hpp"
#include "common/logging.hpp"

namespace mqs::net {

struct NetServer::Connection {
  int fd = -1;
  /// Accept ordinal; every query submitted on this connection carries it
  /// so per-client fairness quotas apply at the wire level.
  int client = -1;
  /// (requestId, future) pairs flowing from the reader to the writer, in
  /// submission order.
  BlockingQueue<std::pair<std::uint64_t, std::future<server::QueryResult>>>
      pending;
  std::jthread reader;
  std::jthread writer;

  ~Connection() {
    reader = {};
    writer = {};
    if (fd >= 0) ::close(fd);
  }
};

NetServer::NetServer(server::QueryServer& queryServer,
                     const CodecRegistry* codecs, std::uint16_t port)
    : queryServer_(queryServer), codecs_(codecs) {
  MQS_CHECK(codecs_ != nullptr);

  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  MQS_CHECK_MSG(listenFd_ >= 0, "cannot create listen socket");
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  MQS_CHECK_MSG(::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof addr) == 0,
                "cannot bind query-server port");
  MQS_CHECK_MSG(::listen(listenFd_, 64) == 0, "cannot listen");

  socklen_t len = sizeof addr;
  MQS_CHECK(::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                          &len) == 0);
  port_ = ntohs(addr.sin_port);

  acceptor_ = std::jthread([this] { acceptLoop(); });
}

NetServer::~NetServer() { stop(); }

void NetServer::stop() {
  if (stopping_.exchange(true)) return;
  // listenFd_ is atomic: the accept loop sees either the live fd (its
  // accept is then unblocked by the shutdown below) or -1 (EBADF, and
  // stopping_ is already set).
  const int lfd = listenFd_.exchange(-1);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  acceptor_ = {};  // join
  std::vector<std::unique_ptr<Connection>> conns;
  {
    MutexLock lock(mu_);
    conns.swap(connections_);
  }
  for (auto& c : conns) {
    ::shutdown(c->fd, SHUT_RDWR);  // unblock the reader
  }
  conns.clear();  // joins reader/writer threads, closes fds
}

void NetServer::acceptLoop() {
  for (;;) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      return;  // listener closed
    }
    const auto clientId =
        static_cast<int>(accepted_.fetch_add(1, std::memory_order_relaxed));
    serveConnection(fd, clientId);
  }
}

void NetServer::serveConnection(int fd, int client) {
  auto conn = std::make_unique<Connection>();
  Connection* c = conn.get();
  c->fd = fd;
  c->client = client;

  c->reader = std::jthread([this, c] {
    Frame frame;
    while (readFrame(c->fd, frame)) {
      if (frame.type != FrameType::Query) break;
      std::uint64_t id = 0;
      try {
        Reader r(frame.payload);
        id = r.u64();
        query::PredicatePtr pred = codecs_->decode(r);
        c->pending.push({id, queryServer_.submit(std::move(pred), c->client)});
      } catch (const std::exception& e) {
        // Malformed predicate: report instead of dying.
        std::promise<server::QueryResult> p;
        p.set_exception(std::current_exception());
        c->pending.push({id, p.get_future()});
      }
    }
    c->pending.close();  // writer drains what was accepted, then exits
  });

  c->writer = std::jthread([c] {
    while (auto item = c->pending.pop()) {
      Writer w;
      w.u64(item->first);
      // share() keeps the result state — and any exception stored in it —
      // referenced for the whole iteration. future::get() releases the
      // state *before* a catch handler runs, so the worker's promise
      // teardown could destroy the exception object concurrently with the
      // e.what() reads below; that is safe only through the runtime's
      // exception refcount, which TSan cannot observe. Holding the state
      // until after the handlers orders the teardown visibly.
      std::shared_future<server::QueryResult> settled = item->second.share();
      try {
        const server::QueryResult& result = settled.get();
        w.blob(result.bytes);
        if (!writeAll(c->fd, packFrame(FrameType::Result, w.bytes()))) break;
      } catch (const server::QueryRejected& e) {
        // Turned away at admission (queue full / over quota): the overload
        // frame, so clients can back off instead of treating this as a
        // query bug.
        w.u8(static_cast<std::uint8_t>(e.reason()));
        w.str(e.what());
        if (!writeAll(c->fd, packFrame(FrameType::Rejected, w.bytes()))) {
          break;
        }
      } catch (const server::QueryShed& e) {
        // Admitted but dropped at dispatch (deadline shed); same overload
        // frame with the DeadlineShed discriminator.
        w.u8(static_cast<std::uint8_t>(server::RejectReason::DeadlineShed));
        w.str(e.what());
        if (!writeAll(c->fd, packFrame(FrameType::Rejected, w.bytes()))) {
          break;
        }
      } catch (const server::QueryFailure& e) {
        // The query reached the terminal FAILED status; tell the client
        // which request died so it can distinguish this from a rejected
        // (malformed) request.
        w.str(e.what());
        if (!writeAll(c->fd, packFrame(FrameType::Failed, w.bytes()))) break;
      } catch (const std::exception& e) {
        w.str(e.what());
        if (!writeAll(c->fd, packFrame(FrameType::Error, w.bytes()))) break;
      }
    }
    ::shutdown(c->fd, SHUT_WR);
  });

  MutexLock lock(mu_);
  connections_.push_back(std::move(conn));
}

}  // namespace mqs::net
