// Volume-visualization application: layout, semantics (3-D Eq. 4 analogue,
// cross-operator reuse), executor correctness against the reference
// renderer, and end-to-end behaviour on the threaded query server.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "server/query_server.hpp"
#include "vol/synthetic_volume.hpp"
#include "vol/vol_executor.hpp"

namespace mqs::vol {
namespace {

constexpr std::uint64_t kSeed = 99;

// ---------------------------------------------------------------- layout

TEST(VolumeLayout, BrickGridAndClipping) {
  const VolumeLayout l(100, 80, 50, 40);
  EXPECT_EQ(l.brickCount(), 3u * 2 * 2);
  EXPECT_EQ(l.brickBox(0), Box3::ofSize(0, 0, 0, 40, 40, 40));
  // Last brick: x in [80,100), y in [40,80), z in [40,50).
  const Box3 last = l.brickBox(l.brickCount() - 1);
  EXPECT_EQ(last, (Box3{80, 40, 40, 100, 80, 50}));
  EXPECT_EQ(l.brickBytes(l.brickCount() - 1), 20u * 40 * 10);
}

TEST(VolumeLayout, BricksTileTheVolume) {
  const VolumeLayout l(70, 50, 30, 32);
  std::vector<Box3> boxes;
  for (std::uint64_t id = 0; id < l.brickCount(); ++id) {
    boxes.push_back(l.brickBox(id));
  }
  EXPECT_TRUE(exactlyCovers(l.extent(), boxes));
  EXPECT_EQ(l.inputBytes(l.extent()), 70u * 50 * 30);
}

TEST(VolumeLayout, BricksIntersectingHalfOpen) {
  const VolumeLayout l(120, 120, 120, 40);
  EXPECT_EQ(l.bricksIntersecting(Box3::ofSize(0, 0, 0, 40, 40, 40)).size(),
            1u);
  EXPECT_EQ(l.bricksIntersecting(Box3::ofSize(0, 0, 0, 41, 40, 40)).size(),
            2u);
  EXPECT_EQ(l.bricksIntersecting(Box3::ofSize(20, 20, 20, 80, 80, 80)).size(),
            27u);
  EXPECT_TRUE(l.bricksIntersecting(Box3::ofSize(200, 0, 0, 5, 5, 5)).empty());
}

// ------------------------------------------------------------- semantics

class VolSemanticsTest : public ::testing::Test {
 protected:
  VolSemanticsTest() { ds_ = sem_.addDataset(VolumeLayout(512, 512, 256, 40)); }

  VolPredicate sub(Box3 b, std::uint32_t lod) {
    return VolPredicate(ds_, b, lod, VolOp::Subvolume);
  }

  VolSemantics sem_;
  storage::DatasetId ds_ = 0;
};

TEST_F(VolSemanticsTest, PredicateInvariants) {
  EXPECT_THROW(sub(Box3::ofSize(0, 0, 0, 10, 8, 8), 4), CheckFailure);
  EXPECT_THROW(VolPredicate(ds_, Box3::ofSize(0, 0, 0, 8, 8, 16), 4,
                            VolOp::Slice),
               CheckFailure);  // slice depth must equal lod
  const auto s = VolPredicate::slice(ds_, Rect::ofSize(0, 0, 64, 64), 32, 4);
  EXPECT_EQ(s.box().depth(), 4);
  EXPECT_EQ(s.outDepth(), 1);
  EXPECT_EQ(s.outBytes(), 16u * 16);
}

TEST_F(VolSemanticsTest, IdenticalOverlapIsOne) {
  const auto p = sub(Box3::ofSize(0, 0, 0, 128, 128, 64), 4);
  EXPECT_DOUBLE_EQ(sem_.overlap(p, p), 1.0);
}

TEST_F(VolSemanticsTest, Eq4AnalogueHalfVolumeAndLodRatio) {
  const auto cached = sub(Box3::ofSize(0, 0, 0, 128, 128, 64), 4);
  const auto half = sub(Box3::ofSize(64, 0, 0, 128, 128, 64), 4);
  EXPECT_DOUBLE_EQ(sem_.overlap(cached, half), 0.5);
  const auto coarser = sub(Box3::ofSize(0, 0, 0, 128, 128, 64), 8);
  EXPECT_DOUBLE_EQ(sem_.overlap(cached, coarser), 0.5);  // I_L/O_L
  // Not invertible.
  EXPECT_DOUBLE_EQ(sem_.overlap(coarser, cached), 0.0);
}

TEST_F(VolSemanticsTest, MisalignmentKillsOverlap) {
  const auto cached = sub(Box3::ofSize(0, 0, 0, 128, 128, 64), 4);
  const auto shifted = sub(Box3::ofSize(2, 0, 0, 128, 128, 64), 4);
  EXPECT_DOUBLE_EQ(sem_.overlap(cached, shifted), 0.0);
  // Congruent modulo the *cached* lod is enough.
  const auto fine = sub(Box3::ofSize(0, 0, 0, 128, 128, 64), 2);
  const auto offset = sub(Box3::ofSize(2, 0, 0, 128, 128, 64), 4);
  EXPECT_GT(sem_.overlap(fine, offset), 0.0);
}

TEST_F(VolSemanticsTest, CrossOperatorSubvolumeAnswersSlice) {
  const auto cached = sub(Box3::ofSize(0, 0, 0, 128, 128, 64), 4);
  const auto slice = VolPredicate::slice(ds_, Rect::ofSize(0, 0, 128, 128),
                                         32, 4);
  // Slice slab [32,36) lies inside the cached subvolume: full coverage.
  EXPECT_DOUBLE_EQ(sem_.overlap(cached, slice), 1.0);
  // And a slice can fill one slab of a subvolume query at equal lod.
  const auto q = sub(Box3::ofSize(0, 0, 32, 128, 128, 4), 4);
  const auto cachedSlice =
      VolPredicate::slice(ds_, Rect::ofSize(0, 0, 128, 128), 32, 4);
  EXPECT_DOUBLE_EQ(sem_.overlap(cachedSlice, q), 1.0);
}

TEST_F(VolSemanticsTest, SliceSlabIsAllOrNothingInZ) {
  // Cached covers only half the slab's thickness -> unusable.
  const auto cached = sub(Box3::ofSize(0, 0, 0, 128, 128, 34), 2);
  const auto slice =
      VolPredicate::slice(ds_, Rect::ofSize(0, 0, 128, 128), 32, 4);
  EXPECT_DOUBLE_EQ(sem_.overlap(cached, slice), 0.0);
}

TEST_F(VolSemanticsTest, RemainderPlusCoveredTilesQuery) {
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const std::uint32_t cl = 1u << rng.uniformInt(0, 2);
    const std::uint32_t ql = cl << rng.uniformInt(0, 2);
    auto snap = [&](std::int64_t v) { return (v / 8) * 8; };
    const auto mk = [&](std::uint32_t lod) {
      const auto l = static_cast<std::int64_t>(lod);
      return Box3::ofSize(snap(rng.uniformInt(0, 200)),
                          snap(rng.uniformInt(0, 200)),
                          snap(rng.uniformInt(0, 100)), l * rng.uniformInt(2, 10),
                          l * rng.uniformInt(2, 10), l * rng.uniformInt(2, 10));
    };
    const auto cached = sub(mk(cl), cl);
    const auto q = sub(mk(ql), ql);
    const Box3 covered = sem_.coveredBox(cached, q);
    std::vector<Box3> parts;
    if (!covered.empty()) parts.push_back(covered);
    for (const auto& r : sem_.remainder(cached, q)) {
      parts.push_back(asVol(*r).box());
      EXPECT_EQ(asVol(*r).lod(), ql);
    }
    EXPECT_TRUE(exactlyCovers(q.box(), parts))
        << cached.describe() << " vs " << q.describe();
  }
}

TEST_F(VolSemanticsTest, SizesAndReusedBytes) {
  const auto p = sub(Box3::ofSize(0, 0, 0, 128, 128, 64), 4);
  EXPECT_EQ(sem_.qoutsize(p), 32u * 32 * 16);
  EXPECT_EQ(sem_.qinputsize(p),
            sem_.layout(ds_).inputBytes(p.box()));
  const auto half = sub(Box3::ofSize(64, 0, 0, 128, 128, 64), 4);
  EXPECT_EQ(sem_.reusedOutputBytes(p, half), 16u * 32 * 16);
}

// -------------------------------------------------------------- executor

class VolExecutorTest : public ::testing::Test {
 protected:
  VolExecutorTest()
      : layoutHandle_(VolumeLayout(160, 160, 96, 40)),
        source_(layoutHandle_, kSeed),
        exec_(&sem_),
        ps_(32ULL << 20) {
    ds_ = sem_.addDataset(layoutHandle_);
    ps_.attach(ds_, &source_);
  }

  VolumeLayout layoutHandle_;
  SyntheticVolumeSource source_;
  VolSemantics sem_;
  VolExecutor exec_;
  pagespace::PageSpaceManager ps_;
  storage::DatasetId ds_ = 0;
};

TEST_F(VolExecutorTest, ExecuteMatchesReferenceAcrossLods) {
  for (const std::uint32_t lod : {1u, 2u, 4u, 8u}) {
    const auto l = static_cast<std::int64_t>(lod);
    const VolPredicate q(ds_, Box3::ofSize(8, 16, 0, l * 16, l * 12, l * 8),
                         lod, VolOp::Subvolume);
    const auto got = exec_.execute(q, ps_);
    const auto expect = renderReferenceVol(q, kSeed);
    EXPECT_EQ(maxAbsDiffVol(expect, got), 0) << q.describe();
  }
}

TEST_F(VolExecutorTest, SliceMatchesReference) {
  const auto q = VolPredicate::slice(ds_, Rect::ofSize(0, 0, 128, 128), 48, 4);
  const auto got = exec_.execute(q, ps_);
  EXPECT_EQ(maxAbsDiffVol(renderReferenceVol(q, kSeed), got), 0);
}

TEST_F(VolExecutorTest, EqualLodProjectionIsExactCopy) {
  const VolPredicate cached(ds_, Box3::ofSize(0, 0, 0, 128, 128, 64), 4,
                            VolOp::Subvolume);
  const auto payload = exec_.execute(cached, ps_);
  const VolPredicate q(ds_, Box3::ofSize(32, 32, 16, 64, 64, 32), 4,
                       VolOp::Subvolume);
  std::vector<std::byte> out(q.outBytes());
  exec_.project(cached, payload, q, out);
  EXPECT_EQ(maxAbsDiffVol(renderReferenceVol(q, kSeed), out), 0);
}

TEST_F(VolExecutorTest, CrossLodProjectionWithinRounding) {
  const VolPredicate cached(ds_, Box3::ofSize(0, 0, 0, 128, 128, 64), 2,
                            VolOp::Subvolume);
  const auto payload = exec_.execute(cached, ps_);
  const VolPredicate q(ds_, Box3::ofSize(0, 0, 0, 128, 128, 64), 8,
                       VolOp::Subvolume);
  std::vector<std::byte> out(q.outBytes());
  exec_.project(cached, payload, q, out);
  EXPECT_LE(maxAbsDiffVol(renderReferenceVol(q, kSeed), out), 2);
}

TEST_F(VolExecutorTest, SliceFromCachedSubvolumeIsExact) {
  const VolPredicate cached(ds_, Box3::ofSize(0, 0, 0, 128, 128, 64), 4,
                            VolOp::Subvolume);
  const auto payload = exec_.execute(cached, ps_);
  const auto slice = VolPredicate::slice(ds_, Rect::ofSize(0, 0, 128, 128),
                                         32, 4);
  std::vector<std::byte> out(slice.outBytes());
  exec_.project(cached, payload, slice, out);
  // A slice is one z-layer of the subvolume: identical computation.
  EXPECT_EQ(maxAbsDiffVol(renderReferenceVol(slice, kSeed), out), 0);
}

TEST_F(VolExecutorTest, RemainderAssemblyReconstructsQuery) {
  const VolPredicate cached(ds_, Box3::ofSize(40, 40, 8, 80, 80, 48), 4,
                            VolOp::Subvolume);
  const auto payload = exec_.execute(cached, ps_);
  const VolPredicate q(ds_, Box3::ofSize(0, 0, 0, 160, 160, 80), 4,
                       VolOp::Subvolume);
  std::vector<std::byte> out(q.outBytes());
  exec_.project(cached, payload, q, out);
  for (const auto& rem : sem_.remainder(cached, q)) {
    const auto part = exec_.execute(*rem, ps_);
    exec_.project(*rem, part, q, out);
  }
  EXPECT_EQ(maxAbsDiffVol(renderReferenceVol(q, kSeed), out), 0);
}

// ------------------------------------------------------------ end-to-end

TEST(VolServer, BrowsingSessionWithCrossOpReuse) {
  VolSemantics sem;
  const auto ds = sem.addDataset(VolumeLayout(256, 256, 128, 40));
  SyntheticVolumeSource source(sem.layout(ds), kSeed);
  VolExecutor exec(&sem);

  server::ServerConfig cfg;
  cfg.threads = 2;
  cfg.policy = "CF";
  cfg.dsBytes = 16ULL << 20;
  cfg.psBytes = 16ULL << 20;
  server::QueryServer server(&sem, &exec, cfg);
  server.attach(ds, &source);

  // 1) LOD-4 overview of the whole volume.
  const VolPredicate overview(ds, Box3::ofSize(0, 0, 0, 256, 256, 128), 4,
                              VolOp::Subvolume);
  const auto r1 = server.execute(overview.clone(), 0);
  EXPECT_EQ(maxAbsDiffVol(renderReferenceVol(overview, kSeed), r1.bytes), 0);
  EXPECT_DOUBLE_EQ(r1.record.overlapUsed, 0.0);

  // 2) A slice through it: answered entirely from the cached overview.
  const auto slicePred =
      VolPredicate::slice(ds, Rect::ofSize(0, 0, 256, 256), 64, 4);
  const auto r2 = server.execute(slicePred.clone(), 0);
  EXPECT_EQ(maxAbsDiffVol(renderReferenceVol(slicePred, kSeed), r2.bytes), 0);
  EXPECT_DOUBLE_EQ(r2.record.overlapUsed, 1.0);
  EXPECT_EQ(r2.record.bytesFromDisk, 0u);

  // 3) A coarser sub-box: re-aggregated from the overview, no disk.
  const VolPredicate coarse(ds, Box3::ofSize(0, 0, 0, 128, 128, 64), 8,
                            VolOp::Subvolume);
  const auto r3 = server.execute(coarse.clone(), 0);
  EXPECT_LE(maxAbsDiffVol(renderReferenceVol(coarse, kSeed), r3.bytes), 2);
  EXPECT_GT(r3.record.overlapUsed, 0.0);
  EXPECT_EQ(r3.record.bytesFromDisk, 0u);

  server.shutdown();
}

TEST(VolServer, ConcurrentVolumeClientsCorrect) {
  VolSemantics sem;
  const auto ds = sem.addDataset(VolumeLayout(200, 200, 100, 40));
  SyntheticVolumeSource source(sem.layout(ds), kSeed);
  VolExecutor exec(&sem);
  server::ServerConfig cfg;
  cfg.threads = 4;
  cfg.policy = "CNBF";
  server::QueryServer server(&sem, &exec, cfg);
  server.attach(ds, &source);

  std::vector<VolPredicate> queries;
  std::vector<std::future<server::QueryResult>> futures;
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t lod = 1u << (i % 3);
    const auto l = static_cast<std::int64_t>(lod);
    queries.emplace_back(ds,
                         Box3::ofSize((i % 2) * 40, ((i / 2) % 2) * 40,
                                      (i % 4) * 8, l * 16, l * 16, l * 8),
                         lod, VolOp::Subvolume);
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    futures.push_back(server.submit(queries[i].clone(), static_cast<int>(i)));
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto result = futures[i].get();
    EXPECT_LE(maxAbsDiffVol(renderReferenceVol(queries[i], kSeed),
                            result.bytes),
              2)
        << queries[i].describe();
  }
  server.shutdown();
}

}  // namespace
}  // namespace mqs::vol
