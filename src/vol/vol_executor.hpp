// Volume query execution: LOD mean-downsampling over bricks fetched through
// the Page Space Manager, and projection of cached results (including the
// exact cross-operator Subvolume <-> Slice paths). Brick fetches run
// through the same bounded readahead pipeline as the VM executor: brick i
// is accumulated while bricks i+1..i+k are in flight.
#pragma once

#include <vector>

#include "pagespace/readahead.hpp"
#include "query/executor.hpp"
#include "vol/vol_semantics.hpp"

namespace mqs::vol {

class VolExecutor final : public query::QueryExecutor {
 public:
  explicit VolExecutor(
      const VolSemantics* semantics,
      int readaheadPages = pagespace::kDefaultReadaheadPages);

  [[nodiscard]] std::vector<std::byte> execute(
      const query::Predicate& pred,
      pagespace::PageSpaceManager& ps) const override;

  void project(const query::Predicate& cached,
               std::span<const std::byte> cachedPayload,
               const query::Predicate& out,
               std::span<std::byte> outBuffer) const override;

 private:
  const VolSemantics* semantics_;
  int readaheadPages_;
};

/// Direct evaluation against the synthetic volume, bypassing the runtime —
/// bit-identical to VolExecutor::execute (same accumulation and rounding).
std::vector<std::uint8_t> renderReferenceVol(const VolPredicate& q,
                                             std::uint64_t seed);

/// Largest absolute difference between two equal-sized voxel buffers.
int maxAbsDiffVol(std::span<const std::uint8_t> a,
                  std::span<const std::byte> b);

}  // namespace mqs::vol
