// Death test for the eviction-listener contract (DESIGN.md §13): the
// listener runs with no Data Store locks held but must never call back into
// the store that notified it — demote/drop decisions work off the
// EvictedBlob that travels out with the callback. The debug reentrancy
// guard (same build gate as the lock-rank checker) turns a violation into
// an immediate abort instead of a latent self-deadlock.
#include <gtest/gtest.h>

#include <memory>

#include "common/lock_order.hpp"
#include "datastore/data_store.hpp"
#include "vm/vm_predicate.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs::datastore {
namespace {

using vm::VMOp;
using vm::VMPredicate;

// Repo-wide convention for abort-checking tests: the fork-based "fast"
// style is unsafe once any test in the binary touches threads, so re-exec.
class ThreadsafeDeathStyle : public ::testing::Environment {
 public:
  void SetUp() override {
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  }
};
const auto* const kDeathStyle =
    ::testing::AddGlobalTestEnvironment(new ThreadsafeDeathStyle);

#if MQS_LOCK_ORDER

query::PredicatePtr pred(vm::VMSemantics&, storage::DatasetId dataset,
                         std::int64_t x) {
  return std::make_unique<VMPredicate>(dataset, Rect::ofSize(x, 0, 256, 256),
                                       4, VMOp::Subsample);
}

TEST(EvictionReentrancyDeathTest, ListenerCallingBackIntoStoreAborts) {
  EXPECT_DEATH(
      {
        vm::VMSemantics sem;
        const auto dataset =
            sem.addDataset(index::ChunkLayout(4096, 4096, 64));
        auto a = pred(sem, dataset, 0);
        const std::uint64_t bytes = vm::asVM(*a).outBytes();
        DataStore ds(2 * bytes, &sem);
        ds.setEvictionListener([&ds](EvictedBlob blob) {
          (void)ds.lookup(*blob.predicate);  // the forbidden re-entry
        });
        (void)ds.insert(std::move(a), {}, bytes);
        (void)ds.insert(pred(sem, dataset, 256), {}, bytes);
        // Third insert overflows the two-blob budget, evicts, and fires
        // the listener — which must abort on its lookup().
        (void)ds.insert(pred(sem, dataset, 512), {}, bytes);
      },
      "eviction-listener reentrancy");
}

#else

TEST(EvictionReentrancyDeathTest, GuardCompiledOut) {
  GTEST_SKIP() << "reentrancy guard only exists under MQS_LOCK_ORDER builds";
}

#endif

}  // namespace
}  // namespace mqs::datastore
