#include "pagespace/page_cache_core.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace mqs::pagespace {
namespace {

using storage::PageKey;

PageKey key(std::uint32_t ds, std::uint64_t p) { return PageKey{ds, p}; }

TEST(PageCacheCore, MissThenHit) {
  PageCacheCore c(1000);
  EXPECT_FALSE(c.touch(key(0, 1)));
  c.insert(key(0, 1), 100);
  EXPECT_TRUE(c.touch(key(0, 1)));
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.residentBytes(), 100u);
  EXPECT_EQ(c.residentPages(), 1u);
}

TEST(PageCacheCore, LruEvictionOrder) {
  PageCacheCore c(300);
  c.insert(key(0, 1), 100);
  c.insert(key(0, 2), 100);
  c.insert(key(0, 3), 100);
  // Touch 1 so 2 becomes LRU.
  EXPECT_TRUE(c.touch(key(0, 1)));
  const auto evicted = c.insert(key(0, 4), 100);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], key(0, 2));
  EXPECT_TRUE(c.contains(key(0, 1)));
  EXPECT_TRUE(c.contains(key(0, 3)));
  EXPECT_TRUE(c.contains(key(0, 4)));
}

TEST(PageCacheCore, EvictsMultipleForLargePage) {
  PageCacheCore c(300);
  c.insert(key(0, 1), 100);
  c.insert(key(0, 2), 100);
  c.insert(key(0, 3), 100);
  const auto evicted = c.insert(key(0, 4), 250);
  EXPECT_EQ(evicted.size(), 3u);
  EXPECT_EQ(c.residentPages(), 1u);
  EXPECT_EQ(c.residentBytes(), 250u);
}

TEST(PageCacheCore, OversizedPageIsUncacheable) {
  PageCacheCore c(100);
  const auto evicted = c.insert(key(0, 1), 200);
  EXPECT_TRUE(evicted.empty());
  EXPECT_FALSE(c.contains(key(0, 1)));
  EXPECT_EQ(c.stats().uncacheable, 1u);
}

TEST(PageCacheCore, PinnedPagesSurviveEviction) {
  PageCacheCore c(300);
  c.insert(key(0, 1), 100);
  c.insert(key(0, 2), 100);
  c.insert(key(0, 3), 100);
  c.pin(key(0, 1));  // 1 is LRU but pinned
  const auto evicted = c.insert(key(0, 4), 100);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], key(0, 2));
  EXPECT_TRUE(c.contains(key(0, 1)));
  c.unpin(key(0, 1));
}

TEST(PageCacheCore, AllPinnedMakesInsertUncacheable) {
  PageCacheCore c(200);
  c.insert(key(0, 1), 100);
  c.insert(key(0, 2), 100);
  c.pin(key(0, 1));
  c.pin(key(0, 2));
  const auto evicted = c.insert(key(0, 3), 100);
  EXPECT_TRUE(evicted.empty());
  EXPECT_FALSE(c.contains(key(0, 3)));
  EXPECT_EQ(c.stats().uncacheable, 1u);
}

TEST(PageCacheCore, PinsNest) {
  PageCacheCore c(100);
  c.insert(key(0, 1), 50);
  c.pin(key(0, 1));
  c.pin(key(0, 1));
  c.unpin(key(0, 1));
  // Still pinned once: cannot erase.
  EXPECT_THROW(c.erase(key(0, 1)), CheckFailure);
  c.unpin(key(0, 1));
  c.erase(key(0, 1));
  EXPECT_FALSE(c.contains(key(0, 1)));
}

TEST(PageCacheCore, InsertExistingJustTouches) {
  PageCacheCore c(300);
  c.insert(key(0, 1), 100);
  c.insert(key(0, 2), 100);
  c.insert(key(0, 1), 100);  // refresh, no double count
  EXPECT_EQ(c.residentBytes(), 200u);
  // 2 is now LRU.
  c.insert(key(0, 3), 100);
  const auto evicted = c.insert(key(0, 4), 100);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], key(0, 2));
}

TEST(PageCacheCore, DistinguishesDatasets) {
  PageCacheCore c(1000);
  c.insert(key(0, 7), 10);
  EXPECT_FALSE(c.touch(key(1, 7)));
  EXPECT_TRUE(c.touch(key(0, 7)));
}

TEST(PageCacheCore, EraseAbsentIsNoop) {
  PageCacheCore c(100);
  c.erase(key(0, 99));  // no throw
  EXPECT_EQ(c.residentPages(), 0u);
}

TEST(PageCacheCore, UnbalancedPinOpsThrow) {
  PageCacheCore c(100);
  EXPECT_THROW(c.pin(key(0, 1)), CheckFailure);
  c.insert(key(0, 1), 10);
  EXPECT_THROW(c.unpin(key(0, 1)), CheckFailure);
}

TEST(PageCacheCore, EvictionCountsInStats) {
  PageCacheCore c(100);
  c.insert(key(0, 1), 100);
  c.insert(key(0, 2), 100);
  EXPECT_EQ(c.stats().evictions, 1u);
}

}  // namespace
}  // namespace mqs::pagespace
