// Fixture rank enum for the mqs-analyze self-test. Mirrors the shape of
// src/common/lock_order.hpp so the analyzer's Rank harvesting is exercised
// without depending on the real hierarchy.
#pragma once

namespace lockorder {

enum class Rank : int {
  kUnranked = 0,
  kLow = 10,
  kMid = 20,
  kShard = 44,
  kHigh = 50,
};

}  // namespace lockorder
