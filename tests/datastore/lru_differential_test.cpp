// Differential guard for the pluggable-eviction refactor (DESIGN.md §13):
// a DataStore built with the Lru ranker at shards == 1 and no spill tier
// must reproduce the historical inline-LRU store byte for byte. The oracle
// below *is* the historical algorithm — front-of-list most recent, victims
// taken from the unpinned tail, dense id sequence 1, 2, 3, ... — and a
// seeded random op stream (insert / lookup / noteReuse / erase) drives both
// in lockstep, comparing ids, eviction order, residency, and counters after
// every step.
#include <gtest/gtest.h>

#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "datastore/data_store.hpp"
#include "vm/vm_predicate.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs::datastore {
namespace {

using vm::VMOp;
using vm::VMPredicate;

/// The pre-refactor store, reduced to its observable algorithm.
class LruOracle {
 public:
  LruOracle(std::uint64_t capacity, const query::QuerySemantics* sem)
      : capacity_(capacity), sem_(sem) {}

  std::optional<BlobId> insert(query::PredicatePtr pred, std::uint64_t bytes,
                               std::vector<BlobId>& evictedLog) {
    ++inserts_;
    if (bytes > capacity_) return std::nullopt;
    while (resident_ + bytes > capacity_) {
      const BlobId victim = lru_.back();
      remove(victim);
      ++evictions_;
      evictedLog.push_back(victim);
    }
    const BlobId id = nextId_++;
    lru_.push_front(id);
    blobs_.emplace(id, Blob{std::move(pred), bytes, lru_.begin()});
    resident_ += bytes;
    return id;
  }

  /// Best strictly-greater-than-`minOverlap` overlap among resident blobs.
  /// Tie-break among equal-overlap blobs is the one store behaviour the
  /// oracle does not model (it follows R-tree traversal order), so the
  /// caller passes the store's chosen id in and the oracle verifies the
  /// choice is *a* maximal one, then refreshes it — keeping the recency
  /// lists in lockstep.
  std::optional<double> lookup(const query::Predicate& q, double minOverlap) {
    ++lookups_;
    double best = minOverlap;
    bool found = false;
    for (const auto& [id, b] : blobs_) {
      const double ov = sem_->overlap(*b.pred, q);
      if (ov > best) {
        best = ov;
        found = true;
      }
    }
    if (!found) return std::nullopt;
    return best;
  }

  void commitHit(BlobId id, double overlap) {
    auto it = blobs_.find(id);
    ASSERT_TRUE(it != blobs_.end());
    lru_.splice(lru_.begin(), lru_, it->second.lruIt);
    ++hits_;
    if (overlap >= 1.0) ++fullHits_;
  }

  void noteReuse(BlobId id, double overlap) {
    auto it = blobs_.find(id);
    if (it == blobs_.end()) return;
    lru_.splice(lru_.begin(), lru_, it->second.lruIt);
    ++hits_;
    if (overlap >= 1.0) ++fullHits_;
  }

  void erase(BlobId id, std::vector<BlobId>& evictedLog) {
    if (!blobs_.contains(id)) return;
    remove(id);
    evictedLog.push_back(id);  // listener fires; stats().evictions does not
  }

  [[nodiscard]] double overlapOf(BlobId id, const query::Predicate& q) const {
    const auto it = blobs_.find(id);
    return it == blobs_.end() ? -1.0 : sem_->overlap(*it->second.pred, q);
  }

  [[nodiscard]] std::uint64_t residentBytes() const { return resident_; }
  [[nodiscard]] std::size_t residentBlobs() const { return blobs_.size(); }
  [[nodiscard]] DataStore::Stats stats() const {
    DataStore::Stats s;
    s.lookups = lookups_;
    s.hits = hits_;
    s.fullHits = fullHits_;
    s.inserts = inserts_;
    s.evictions = evictions_;
    s.uncacheable = inserts_ - (nextId_ - 1);
    return s;
  }

 private:
  struct Blob {
    query::PredicatePtr pred;
    std::uint64_t bytes = 0;
    std::list<BlobId>::iterator lruIt;
  };

  void remove(BlobId id) {
    auto it = blobs_.find(id);
    resident_ -= it->second.bytes;
    lru_.erase(it->second.lruIt);
    blobs_.erase(it);
  }

  const std::uint64_t capacity_;
  const query::QuerySemantics* sem_;
  std::list<BlobId> lru_;  ///< front = most recent
  std::unordered_map<BlobId, Blob> blobs_;
  std::uint64_t resident_ = 0;
  BlobId nextId_ = 1;
  std::uint64_t lookups_ = 0, hits_ = 0, fullHits_ = 0, inserts_ = 0,
                evictions_ = 0;
};

class LruDifferentialTest : public ::testing::Test {
 protected:
  LruDifferentialTest() {
    dataset_ = sem_.addDataset(index::ChunkLayout(4096, 4096, 64));
  }

  query::PredicatePtr randomPred(Rng& rng) {
    const std::uint32_t zoom = 1u << rng.uniformInt(1, 3);  // 2, 4, 8
    const std::int64_t grid = 32;
    const std::int64_t x = rng.uniformInt(0, 96) * grid;
    const std::int64_t y = rng.uniformInt(0, 96) * grid;
    const std::int64_t w = rng.uniformInt(1, 16) * grid;
    const std::int64_t h = rng.uniformInt(1, 16) * grid;
    return std::make_unique<VMPredicate>(
        dataset_,
        Rect::ofSize(std::min<std::int64_t>(x, 4096 - w),
                     std::min<std::int64_t>(y, 4096 - h), w, h),
        zoom, VMOp::Subsample);
  }

  vm::VMSemantics sem_;
  storage::DatasetId dataset_ = 0;
};

TEST_F(LruDifferentialTest, RankerStoreMatchesInlineLruOracle) {
  // Tight enough that the stream keeps the store under eviction pressure.
  const std::uint64_t capacity = 96 << 10;
  DataStore ds(capacity, &sem_, EvictionPolicy::Lru, /*shards=*/1);
  LruOracle oracle(capacity, &sem_);

  std::vector<BlobId> dsEvicted;
  std::vector<BlobId> oracleEvicted;
  ds.setEvictionListener(
      [&dsEvicted](EvictedBlob blob) { dsEvicted.push_back(blob.id); });

  Rng rng(0x15504202ULL);
  std::vector<query::PredicatePtr> inserted;  // probe pool for lookups
  std::vector<BlobId> ids;                    // ever-issued ids

  for (int step = 0; step < 2000; ++step) {
    const double dice = rng.uniform01();
    if (dice < 0.50 || inserted.empty()) {
      auto p = randomPred(rng);
      const std::uint64_t bytes = vm::asVM(*p).outBytes();
      const auto a = ds.insert(p->clone(), {}, bytes);
      const auto b = oracle.insert(p->clone(), bytes, oracleEvicted);
      ASSERT_EQ(a, b) << "insert diverged at step " << step;
      if (a) ids.push_back(*a);
      inserted.push_back(std::move(p));
    } else if (dice < 0.80) {
      // Lookup: half exact probes of past inserts, half fresh regions.
      const auto probe =
          rng.uniform01() < 0.5
              ? inserted[static_cast<std::size_t>(rng.uniformInt(
                             0, static_cast<std::int64_t>(inserted.size()) -
                                    1))]
                    ->clone()
              : randomPred(rng);
      const auto a = ds.lookup(*probe);
      const auto best = oracle.lookup(*probe, 0.0);
      ASSERT_EQ(a.has_value(), best.has_value())
          << "hit/miss diverged at step " << step;
      if (a) {
        // The store's winner must carry the oracle's best overlap (the
        // winning *score* is deterministic even where equal-overlap
        // tie-break order is not).
        ASSERT_DOUBLE_EQ(a->overlap, *best);
        ASSERT_DOUBLE_EQ(oracle.overlapOf(a->id, *probe), *best);
        oracle.commitHit(a->id, a->overlap);
      }
    } else if (dice < 0.90 && !ids.empty()) {
      const BlobId id = ids[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(ids.size()) - 1))];
      ds.noteReuse(id, 1.0);
      oracle.noteReuse(id, 1.0);
    } else if (!ids.empty()) {
      const BlobId id = ids[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(ids.size()) - 1))];
      ds.erase(id);
      oracle.erase(id, oracleEvicted);
    }

    ASSERT_EQ(ds.residentBytes(), oracle.residentBytes())
        << "residency diverged at step " << step;
    ASSERT_EQ(ds.residentBlobs(), oracle.residentBlobs());
    ASSERT_EQ(dsEvicted, oracleEvicted)
        << "eviction order diverged at step " << step;
  }

  // Byte-identical also in the aggregates the engines report.
  const auto a = ds.stats();
  const auto b = oracle.stats();
  EXPECT_EQ(a.lookups, b.lookups);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.fullHits, b.fullHits);
  EXPECT_EQ(a.inserts, b.inserts);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.uncacheable, b.uncacheable);
  EXPECT_GT(a.evictions, 100u);  // the stream actually exercised pressure
}

}  // namespace
}  // namespace mqs::datastore
