// ScanRegistry unit semantics (DESIGN.md §14): the shared-scan table's
// lifecycle contract — candidate visibility obeys the older-owner rule,
// subscribe only joins Running scans, publish multicasts one payload copy
// to every subscriber (and skips the copy when nobody folded in), fail and
// guard abandonment wake subscribers into the Failed state, never a hang.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "pagespace/scan_registry.hpp"
#include "vm/vm_predicate.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs::pagespace {
namespace {

using vm::VMOp;
using vm::VMPredicate;

VMPredicate pred(std::int64_t x = 0, std::int64_t y = 0) {
  return VMPredicate(0, Rect::ofSize(x, y, 256, 256), 4, VMOp::Subsample);
}

std::vector<std::byte> bytes(std::size_t n, std::byte fill = std::byte{7}) {
  return std::vector<std::byte>(n, fill);
}

TEST(ScanRegistryTest, PublishDeliversOnePayloadToEverySubscriber) {
  ScanRegistry reg;
  auto guard = reg.beginScan(pred(), /*ownerNode=*/1, /*ownerSeq=*/1);
  ASSERT_TRUE(guard.active());
  EXPECT_EQ(reg.activeScans(), 1u);

  const ScanRegistry::ScanPtr a = reg.subscribe(guard.id());
  const ScanRegistry::ScanPtr b = reg.subscribe(guard.id());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a, b);  // one Scan object, shared

  const auto payload = bytes(64);
  EXPECT_EQ(guard.publish(payload), 2);
  EXPECT_FALSE(guard.active());
  EXPECT_EQ(reg.activeScans(), 0u);

  a->done.wait();
  EXPECT_EQ(a->state, ScanRegistry::ScanState::Published);
  ASSERT_NE(a->payload, nullptr);
  EXPECT_EQ(*a->payload, payload);

  const auto stats = reg.stats();
  EXPECT_EQ(stats.scansRegistered, 1u);
  EXPECT_EQ(stats.published, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.foldHits, 2u);
  EXPECT_EQ(stats.bytesShared, 2u * 64u);
}

TEST(ScanRegistryTest, PublishWithoutSubscribersSkipsThePayloadCopy) {
  ScanRegistry reg;
  auto guard = reg.beginScan(pred(), 1, 1);
  EXPECT_EQ(guard.publish(bytes(1024)), 0);
  EXPECT_EQ(reg.stats().bytesShared, 0u);
  // Subscribing to a settled scan finds nothing: the index entry was
  // erased under the same lock that finalized the subscriber count.
  EXPECT_EQ(reg.subscribe(1), nullptr);
  EXPECT_EQ(reg.stats().foldHits, 0u);
}

TEST(ScanRegistryTest, FailWakesSubscribersWithTheOwnersError) {
  ScanRegistry reg;
  auto guard = reg.beginScan(pred(), 3, 2);
  const ScanRegistry::ScanPtr sub = reg.subscribe(guard.id());
  ASSERT_NE(sub, nullptr);
  guard.fail("device exploded");
  sub->done.wait();
  EXPECT_EQ(sub->state, ScanRegistry::ScanState::Failed);
  EXPECT_EQ(sub->payload, nullptr);
  EXPECT_EQ(sub->error, "device exploded");
  EXPECT_EQ(reg.stats().failed, 1u);
  EXPECT_EQ(reg.activeScans(), 0u);
}

TEST(ScanRegistryTest, AbandonedGuardFailsTheScanSoSubscribersNeverHang) {
  ScanRegistry reg;
  ScanRegistry::ScanPtr sub;
  {
    auto guard = reg.beginScan(pred(), 3, 2);
    sub = reg.subscribe(guard.id());
    ASSERT_NE(sub, nullptr);
    // Guard unwinds without publish/fail — e.g. a deadline QueryFailure
    // thrown between registration and the executor call.
  }
  sub->done.wait();
  EXPECT_EQ(sub->state, ScanRegistry::ScanState::Failed);
  EXPECT_NE(sub->error.find("unwound"), std::string::npos);
  EXPECT_EQ(reg.stats().failed, 1u);
}

TEST(ScanRegistryTest, CandidatesObeyTheOlderOwnerRule) {
  ScanRegistry reg;
  auto g1 = reg.beginScan(pred(0, 0), /*ownerNode=*/10, /*ownerSeq=*/5);
  auto g2 = reg.beginScan(pred(64, 0), /*ownerNode=*/11, /*ownerSeq=*/7);

  // Only strictly older owners are eligible (the deadlock rule), and a
  // subscriber with no execution sequence yet (0) gets nothing.
  EXPECT_TRUE(reg.candidatesFor(/*subscriberSeq=*/5, 8).empty());
  EXPECT_TRUE(reg.candidatesFor(/*subscriberSeq=*/0, 8).empty());

  const auto some = reg.candidatesFor(/*subscriberSeq=*/6, 8);
  ASSERT_EQ(some.size(), 1u);
  EXPECT_EQ(some[0].ownerNode, 10u);
  EXPECT_EQ(some[0].ownerSeq, 5u);
  ASSERT_NE(some[0].pred, nullptr);

  const auto all = reg.candidatesFor(/*subscriberSeq=*/8, 8);
  ASSERT_EQ(all.size(), 2u);
  // Registration order (scan id order) — deterministic for the planner.
  EXPECT_EQ(all[0].ownerNode, 10u);
  EXPECT_EQ(all[1].ownerNode, 11u);

  // The max cap truncates the snapshot.
  EXPECT_EQ(reg.candidatesFor(8, 1).size(), 1u);

  // An owner with no recorded sequence (0) is never a candidate.
  auto g3 = reg.beginScan(pred(128, 0), 12, /*ownerSeq=*/0);
  EXPECT_EQ(reg.candidatesFor(100, 8).size(), 2u);

  g1.publish({});
  g2.publish({});
  g3.publish({});
  // Settled scans leave the candidate set at once.
  EXPECT_TRUE(reg.candidatesFor(100, 8).empty());
}

TEST(ScanRegistryTest, SnapshotPredicatesSurviveScanResolution) {
  ScanRegistry reg;
  auto guard = reg.beginScan(pred(32, 32), 1, 1);
  const auto cands = reg.candidatesFor(2, 8);
  ASSERT_EQ(cands.size(), 1u);
  guard.publish({});
  // The snapshot cloned the predicate, so it outlives the scan.
  EXPECT_EQ(cands[0].pred->boundingBox(), pred(32, 32).boundingBox());
}

TEST(ScanRegistryTest, ConcurrentSubscribersAllSeeThePublishedPayload) {
  // Threaded smoke for the latch protocol (meaningful under TSan): many
  // subscribers race subscribe + wait against the owner's publish.
  ScanRegistry reg;
  auto guard = reg.beginScan(pred(), 1, 1);
  const query::ScanId id = guard.id();
  const auto payload = bytes(256, std::byte{42});

  std::vector<std::thread> threads;
  std::atomic<int> hits{0};
  std::atomic<int> misses{0};
  threads.reserve(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      const ScanRegistry::ScanPtr sub = reg.subscribe(id);
      if (sub == nullptr) {
        // Raced past the publish: the §14 contract says recompute
        // independently, never wait.
        misses.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      sub->done.wait();
      EXPECT_EQ(sub->state, ScanRegistry::ScanState::Published);
      ASSERT_NE(sub->payload, nullptr);
      EXPECT_EQ(*sub->payload, payload);
      hits.fetch_add(1, std::memory_order_relaxed);
    });
  }
  (void)guard.publish(payload);
  for (auto& t : threads) t.join();
  EXPECT_EQ(hits.load() + misses.load(), 8);
  EXPECT_EQ(reg.stats().foldHits, static_cast<std::uint64_t>(hits.load()));
}

}  // namespace
}  // namespace mqs::pagespace
