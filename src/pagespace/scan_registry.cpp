#include "pagespace/scan_registry.hpp"

#include <utility>

namespace mqs::pagespace {

ScanRegistry::ScanGuard ScanRegistry::beginScan(const query::Predicate& pred,
                                                std::uint64_t ownerNode,
                                                std::uint64_t ownerSeq) {
  auto scan = std::make_shared<Scan>();
  scan->ownerNode = ownerNode;
  scan->ownerSeq = ownerSeq;
  scan->pred = pred.clone();
  scan->done = scan->donePromise_.get_future().share();
  {
    MutexLock lock(mu_);
    scan->id = nextId_++;
    running_.emplace(scan->id, scan);
  }
  scansRegistered_.fetch_add(1, std::memory_order_relaxed);
  return ScanGuard(this, std::move(scan));
}

ScanRegistry::ScanPtr ScanRegistry::subscribe(query::ScanId id) {
  ScanPtr scan;
  {
    MutexLock lock(mu_);
    const auto it = running_.find(id);
    if (it == running_.end()) return nullptr;  // already published or failed
    scan = it->second;
    ++scan->subscribers_;
  }
  foldHits_.fetch_add(1, std::memory_order_relaxed);
  return scan;
}

std::vector<query::FoldCandidate> ScanRegistry::candidatesFor(
    std::uint64_t subscriberSeq, std::size_t max) const {
  std::vector<query::FoldCandidate> out;
  MutexLock lock(mu_);
  for (const auto& [id, scan] : running_) {
    if (out.size() >= max) break;
    // The deadlock rule: fold only into strictly older executions, so fold
    // waits — like executing-source waits — always point backwards in
    // execution-sequence order and can never form a cycle.
    if (scan->ownerSeq == 0 || subscriberSeq == 0 ||
        scan->ownerSeq >= subscriberSeq) {
      continue;
    }
    query::FoldCandidate c;
    c.scanId = id;
    c.pred = scan->pred->clone();
    c.ownerNode = scan->ownerNode;
    c.ownerSeq = scan->ownerSeq;
    out.push_back(std::move(c));
  }
  return out;
}

int ScanRegistry::publish(Scan& scan, std::span<const std::byte> bytes) {
  int subscribers = 0;
  {
    MutexLock lock(mu_);
    if (scan.resolved_) return 0;
    scan.resolved_ = true;
    // Erasing the index entry first makes the subscriber count final: a
    // subscribe() racing this publish either got in (and is counted) or
    // finds no entry and recomputes on its own.
    running_.erase(scan.id);
    subscribers = scan.subscribers_;
    scan.state = ScanState::Published;
    if (subscribers > 0) {
      // The single payload copy every subscriber shares. Skipped when the
      // scan was never folded into — the common case stays copy-free.
      scan.payload = std::make_shared<const std::vector<std::byte>>(
          bytes.begin(), bytes.end());
    }
  }
  published_.fetch_add(1, std::memory_order_relaxed);
  bytesShared_.fetch_add(
      static_cast<std::uint64_t>(subscribers) * bytes.size(),
      std::memory_order_relaxed);
  // Outside the lock: waking subscribers must not wake into the registry
  // mutex (and set_value may run continuations inline).
  scan.donePromise_.set_value();
  return subscribers;
}

void ScanRegistry::fail(Scan& scan, std::string_view what) {
  {
    MutexLock lock(mu_);
    if (scan.resolved_) return;
    scan.resolved_ = true;
    running_.erase(scan.id);
    scan.state = ScanState::Failed;
    scan.error.assign(what.begin(), what.end());
  }
  failed_.fetch_add(1, std::memory_order_relaxed);
  scan.donePromise_.set_value();
}

ScanRegistry::Stats ScanRegistry::stats() const {
  Stats s;
  s.scansRegistered = scansRegistered_.load(std::memory_order_relaxed);
  s.published = published_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.foldHits = foldHits_.load(std::memory_order_relaxed);
  s.bytesShared = bytesShared_.load(std::memory_order_relaxed);
  return s;
}

std::size_t ScanRegistry::activeScans() const {
  MutexLock lock(mu_);
  return running_.size();
}

}  // namespace mqs::pagespace
