// True positive (half 2): the reverse order, in a different TU.
#include "ranks.hpp"

namespace fx {

void CycA::backward() {
  MutexLock b(mb_);
  MutexLock a(ma_);
}

}  // namespace fx
