// Simulated query server: the full middleware lifecycle of §2/§4 executed
// in virtual time on a modeled SMP.
//
// Everything that decides *what* happens is the real code — the scheduling
// graph, ranking policies, Data Store residency, page-cache residency, and
// reuse planning (the shared query::Planner produces the same ReusePlans
// the threaded server executes). Only *how long* things take is modeled:
// CPU bursts occupy one of `cpus` processors, page misses queue FCFS at one
// of the modeled disks, and a query blocked on a still-executing dependency
// holds its thread-pool slot without consuming CPU (the waste FF/CNBF try
// to avoid). Plan execution charges modeled costs per step instead of
// moving bytes; no source-selection logic lives in this file.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datastore/data_store.hpp"
#include "datastore/spill_tier.hpp"
#include "metrics/metrics.hpp"
#include "pagespace/page_cache_core.hpp"
#include "pagespace/scan_registry.hpp"
#include "query/planner.hpp"
#include "sched/scheduler.hpp"
#include "sim/app_model.hpp"
#include "sim/disk_server.hpp"
#include "sim/primitives.hpp"
#include "sim/simulator.hpp"
#include "storage/disk_model.hpp"
#include "trace/trace.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs::sim {

struct SimConfig {
  /// Query-server thread pool size = max concurrently executing queries.
  int threads = 4;
  /// Processors of the modeled SMP (the paper's machine has 24).
  int cpus = 24;
  storage::DiskFarmModel diskFarm{};

  std::uint64_t dsBytes = 64ULL << 20;  ///< Data Store budget
  std::uint64_t psBytes = 32ULL << 20;  ///< Page Space budget
  /// Data Store eviction ranker: LRU | LFU | LARGEST | COST. COST scores
  /// victims by traced recompute benefit per byte (DESIGN.md §13); the
  /// simulator then runs a private cost-accounting tracer (virtual-time
  /// ledger) even with tracing off.
  std::string dsEviction = "LRU";
  /// Spill-tier byte budget (0 = no tier, evictions stay terminal). The
  /// simulated tier is always in-memory metadata; restores charge
  /// diskFarm.disk's modeled service time as virtual delay.
  std::uint64_t spillBytes = 0;

  /// Disk-queue model: "kstream" charges seeks with the analytic k-stream
  /// approximation; "fifo"/"elevator" run a positional head model with the
  /// respective queue discipline (see sim/disk_server.hpp).
  std::string ioModel = "kstream";

  /// Pages of readahead issued per demand-fetch (0 = off). Prefetches the
  /// query's own upcoming chunks asynchronously, deepening device queues —
  /// with the elevator discipline this rebuilds sequential runs that
  /// interleaved synchronous streams destroy.
  int prefetchPages = 0;

  /// CPU seconds per input byte scanned. Defaults give the paper's CPU:I/O
  /// ratios against the default disk model: ~0.05 for subsampling,
  /// ~1:1 for averaging (§5).
  double cpuPerByteSubsample = 2.4e-9;
  double cpuPerByteAverage = 4.6e-8;
  /// CPU seconds per output byte produced by project().
  double cpuPerOutByteProject = 1.0e-8;
  /// Host-side cost per page request (syscall/controller path); charged to
  /// the issuing query thread, not the device.
  double hostOverheadPerPageSec = 0.0012;
  /// Fixed planning cost per query (index lookup, graph bookkeeping).
  double planningOverheadSec = 0.0005;

  bool dataStoreEnabled = true;      ///< E1 ablation switch
  bool cacheSubqueryResults = true;  ///< sub-query results become blobs too
  int maxNestedReuseDepth = 2;       ///< DS reuse inside sub-queries
  bool allowWaitOnExecuting = true;  ///< may block on an executing source
  /// Dynamic query folding (DESIGN.md §14): queries planned while another
  /// query's depth-0 scan is still running may fold into it (FoldIntoScan)
  /// and charge only projection CPU instead of re-fetching and re-scanning
  /// the shared region — the modeled mirror of the threaded server's
  /// shared-payload multicast. Requires allowWaitOnExecuting.
  bool foldScans = true;
  /// Reuse-plan projection-step budget (query::PlannerConfig); 1 restores
  /// the historic single-best-source behaviour.
  int maxReuseSources = 4;

  std::string policy = "FIFO";
  double alpha = 0.2;  ///< CF / COMBINED weight
  bool incrementalRanking = true;

  /// Optional query-lifecycle trace sink. The simulator stamps events with
  /// *virtual* time but emits the identical span vocabulary as the threaded
  /// QueryServer (the sim-vs-real trace equivalence test's currency). Null
  /// (the default) disables tracing.
  std::shared_ptr<trace::Tracer> traceSink;
};

class SimServer {
 public:
  /// Generic form: any application, given its semantics + cost model.
  SimServer(Simulator& sim, const query::QuerySemantics* semantics,
            const AppModel* model, SimConfig cfg);

  /// Virtual Microscope convenience: builds the VM cost adapter from the
  /// config's CPU:I/O calibration constants.
  SimServer(Simulator& sim, const vm::VMSemantics* semantics, SimConfig cfg);

  /// Enqueue a query now; returns its scheduler node. Dispatch happens
  /// automatically as thread-pool slots free up.
  sched::NodeId submit(query::PredicatePtr pred, int client = -1);

  /// Completion trigger for a submitted query.
  Trigger& completionOf(sched::NodeId node);

  /// Client convenience: submit and suspend until the result is delivered.
  Task<void> executeAndWait(query::PredicatePtr pred, int client = -1);

  [[nodiscard]] const metrics::Collector& collector() const {
    return collector_;
  }
  [[nodiscard]] const sched::QueryScheduler& scheduler() const {
    return scheduler_;
  }
  [[nodiscard]] const datastore::DataStore& dataStore() const { return ds_; }
  /// The spill tier (null when spillBytes == 0).
  [[nodiscard]] const datastore::SpillTier* spillTier() const {
    return spill_.get();
  }
  [[nodiscard]] const pagespace::PageCacheCore& pageCache() const {
    return psCore_;
  }
  /// Shared-scan registry (fold statistics; DESIGN.md §14).
  [[nodiscard]] const pagespace::ScanRegistry& scanRegistry() const {
    return scans_;
  }

  struct IoStats {
    std::uint64_t pageReads = 0;    ///< device reads issued
    std::uint64_t pageHits = 0;     ///< served from the page space
    std::uint64_t pageMerges = 0;   ///< joined an in-flight read
    std::uint64_t bytesRead = 0;
    double diskBusyIntegral = 0.0;  ///< summed across disks
    std::uint64_t sequentialReads = 0;  ///< positional models only
  };
  [[nodiscard]] IoStats ioStats() const;

  [[nodiscard]] const SimConfig& config() const { return cfg_; }

  /// The attached trace sink (null when tracing is off).
  [[nodiscard]] trace::Tracer* tracer() const { return tracer_; }

 private:
  Task<void> queryTask(sched::NodeId node, metrics::QueryRecord rec);
  /// Execute a ReusePlan for `pred` (a query or remainder part at nesting
  /// level `depth`), charging modeled costs per step: project-CPU for
  /// cached sources, latch wait + project-CPU for executing sources,
  /// computePart for remainders. Mirrors QueryServer::executePlan.
  Task<void> executePlan(query::ReusePlan plan, query::PredicatePtr pred,
                         int depth, metrics::QueryRecord* rec);
  /// Plan + execute one remainder part (depth >= 1) and optionally cache
  /// its (simulated) result.
  Task<void> computePart(query::PredicatePtr part, int depth,
                         metrics::QueryRecord* rec);
  /// Compute `pred` entirely from raw data: fetch + process each chunk of
  /// the application model's demand. No Data Store interaction.
  Task<void> computeRaw(query::PredicatePtr pred, metrics::QueryRecord* rec);
  /// Register a shared scan over `pred` when folding is on and this is a
  /// depth-0 compute (DESIGN.md §14); returns an inactive guard otherwise.
  /// Pairs the scan with a Trigger so subscriber coroutines can await it
  /// (a std::future wait would block the simulator's one OS thread).
  [[nodiscard]] pagespace::ScanRegistry::ScanGuard beginScanIfFolding(
      const query::Predicate& pred, const metrics::QueryRecord& rec,
      int depth);
  /// Publish the scan (the simulator carries no payload bytes — subscriber
  /// savings are modeled as skipped fetches), fire + retire its Trigger,
  /// and emit the FOLD_SUBSCRIBERS gauge when anybody folded in.
  void publishScan(pagespace::ScanRegistry::ScanGuard& scan);
  /// Read-through page fetch; `rec` may be null (prefetch accounting).
  Task<void> fetchChunk(storage::PageKey key, std::size_t bytes,
                        metrics::QueryRecord* rec);
  Task<void> cpuRun(double seconds);
  /// Eviction listener: demote to the spill tier (SWAPPED_OUT retained) or
  /// retire the node terminally when there is no tier. Never re-enters ds_.
  void onBlobEvicted(datastore::EvictedBlob blob);
  /// Terminal drop of a spilled entry: unmap + retire its graph node.
  void retireSpilled(datastore::SpillId sid);
  /// Cache `pred`'s simulated result with the query's accrued virtual-time
  /// recompute cost attributed to the blob (a no-op ledger take when cost
  /// accounting is off).
  std::optional<datastore::BlobId> insertWithCost(query::PredicatePtr pred,
                                                  std::uint64_t outBytes,
                                                  std::uint64_t queryId);
  void finishNode(sched::NodeId node, std::optional<datastore::BlobId> blob);
  void pump();

  Simulator* sim_;
  const query::QuerySemantics* sem_;
  std::unique_ptr<AppModel> ownedModel_;  ///< set by the VM convenience ctor
  const AppModel* model_;
  SimConfig cfg_;
  sched::QueryScheduler scheduler_;
  datastore::DataStore ds_;
  std::unique_ptr<datastore::SpillTier> spill_;  ///< null when spillBytes == 0
  pagespace::PageCacheCore psCore_;
  query::Planner planner_;
  Semaphore cpus_;
  std::vector<std::unique_ptr<FcfsServer>> disks_;        ///< "kstream"
  std::vector<std::unique_ptr<DiskServer>> posDisks_;     ///< positional
  std::unordered_map<storage::PageKey, std::unique_ptr<Trigger>,
                     storage::PageKeyHash>
      inflight_;
  std::unordered_map<sched::NodeId, std::unique_ptr<Trigger>> completion_;
  /// Shared-scan registry (DESIGN.md §14) and the per-scan Triggers
  /// subscribers await (fired and erased at publish; the simulator never
  /// touches a Scan's std::future latch).
  pagespace::ScanRegistry scans_;
  std::unordered_map<query::ScanId, std::unique_ptr<Trigger>> scanTrigger_;
  /// Records of submitted-but-not-yet-dispatched queries.
  std::unordered_map<sched::NodeId, metrics::QueryRecord> pending_;
  std::unordered_map<sched::NodeId, datastore::BlobId> nodeBlob_;
  std::unordered_map<datastore::BlobId, sched::NodeId> blobNode_;
  /// SWAPPED_OUT bookkeeping: which spill entry backs which graph node.
  std::unordered_map<sched::NodeId, datastore::SpillId> nodeSpill_;
  std::unordered_map<datastore::SpillId, sched::NodeId> spillNode_;
  std::unordered_set<sched::NodeId> evictedWhileExecuting_;
  int active_ = 0;
  /// Queries currently issuing raw-data I/O — the k of the disk model's
  /// k-stream seek approximation.
  int ioStreams_ = 0;
  std::uint64_t pageMerges_ = 0;
  std::uint64_t bytesRead_ = 0;
  trace::Tracer* tracer_ = nullptr;  ///< traceSink or ownedTracer_
  /// Private, *disabled* tracer installed when cost-aware eviction or the
  /// spill tier needs recompute-cost accounting but no trace sink is
  /// attached (same pattern as the threaded server, on the virtual clock).
  std::unique_ptr<trace::Tracer> ownedTracer_;
  metrics::Collector collector_;
};

}  // namespace mqs::sim
