#include "pagespace/page_space_manager.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <thread>

#include "common/check.hpp"

namespace mqs::pagespace {

namespace {
thread_local std::uint64_t tlsDeviceBytes = 0;
thread_local double tlsStallSeconds = 0.0;

/// Attempts to grow a shard's slice before declaring a page uncacheable.
/// Bounded because concurrent inserts can consume borrowed budget between
/// the unlock and the relock.
constexpr int kMaxBorrowAttempts = 4;

/// Adds wall time spent in a blocking wait to the thread's stall counter.
/// With a tracer active and a current query on this thread, the wait is
/// also emitted as an IO_STALL span — and the stall is measured from the
/// span's own begin/end timestamps (the same two clock reads), so a
/// query's IO_STALL span durations sum to exactly its ioStallTime.
class StallTimer {
 public:
  explicit StallTimer(trace::Tracer* tracer) {
    if (tracer != nullptr && tracer->enabled()) {
      if (const auto qid = tracer->currentThreadQuery()) {
        const double t0 = tracer->beginSpan(*qid, trace::SpanKind::IoStall);
        if (t0 != trace::Tracer::kDisabledTs) {
          tracer_ = tracer;
          queryId_ = *qid;
          traceT0_ = t0;
          return;
        }
      }
    }
    t0_ = std::chrono::steady_clock::now();
  }
  ~StallTimer() {
    if (tracer_ != nullptr) {
      const double t1 = tracer_->endSpan(queryId_, trace::SpanKind::IoStall);
      if (t1 != trace::Tracer::kDisabledTs) {
        tlsStallSeconds += t1 - traceT0_;
      }
      return;
    }
    tlsStallSeconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
            .count();
  }

 private:
  trace::Tracer* tracer_ = nullptr;
  std::uint64_t queryId_ = 0;
  double traceT0_ = 0.0;
  std::chrono::steady_clock::time_point t0_;
};

/// Rebuild a failed read's exception on the calling thread. Each waiter
/// gets a fresh object; the original exception died on the reading thread.
[[noreturn]] void throwReadError(const ReadResult& r) {
  switch (r.error) {
    case ReadResult::Error::Transient:
      throw storage::TransientReadError(r.message);
    case ReadResult::Error::Permanent:
      throw storage::PermanentReadError(r.message);
    default:
      throw std::runtime_error(r.message);
  }
}
}  // namespace

void PageSpaceManager::resetThreadCounters() {
  tlsDeviceBytes = 0;
  tlsStallSeconds = 0.0;
}
std::uint64_t PageSpaceManager::threadDeviceBytes() { return tlsDeviceBytes; }
double PageSpaceManager::threadStallSeconds() { return tlsStallSeconds; }

PageSpaceManager::PageSpaceManager(std::uint64_t capacityBytes, int ioThreads,
                                   RetryPolicy retry, int shards)
    : capacityBytes_(capacityBytes), retry_(retry) {
  MQS_CHECK(ioThreads >= 0);
  MQS_CHECK(retry_.maxAttempts >= 1);
  MQS_CHECK(retry_.backoffSec >= 0.0 && retry_.multiplier >= 1.0);
  MQS_CHECK_MSG(shards >= 1 && shards <= kMaxShards,
                "shard count out of range");
  const auto n = std::bit_ceil(static_cast<std::size_t>(shards));
  shardMask_ = n - 1;
  // Equal slices; the remainder seeds the spare pool so every byte of the
  // budget is accounted for (sum of slices + spare == capacity).
  const std::uint64_t slice = capacityBytes / n;
  spare_.store(capacityBytes - slice * n, std::memory_order_relaxed);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(slice));
  }
  if (ioThreads > 0) {
    io_ = std::make_unique<ThreadPool>(static_cast<std::size_t>(ioThreads));
  }
}

PageSpaceManager::~PageSpaceManager() {
  // Drain queued prefetches before members are torn down; the pool is the
  // last-declared member but the explicit shutdown keeps the ordering
  // obvious (and safe if members are ever reordered).
  if (io_) io_->shutdown();
}

void PageSpaceManager::attach(storage::DatasetId dataset,
                              const storage::DataSource* source) {
  MQS_CHECK(source != nullptr);
  MutexLock lock(mu_);
  sources_[dataset] = source;
}

const storage::DataSource* PageSpaceManager::sourceFor(
    storage::DatasetId dataset) const {
  // Callers hold a shard lock (rank kPageSpaceShard); the registry lock
  // ranks above it, so this nested acquisition is in order.
  MutexLock lock(mu_);
  auto it = sources_.find(dataset);
  MQS_CHECK_MSG(it != sources_.end(), "fetch from unattached dataset");
  return it->second;
}

std::uint64_t PageSpaceManager::consumeClaimLocked(Shard& s,
                                                   const storage::PageKey& key,
                                                   bool served) {
  auto it = s.claims.find(key);
  if (it == s.claims.end()) return 0;
  Claim& c = it->second;
  const std::uint64_t credit = served ? c.creditBytes : 0;
  c.creditBytes = 0;
  if (c.issued) {
    // Attribute the issued read once: to a hit if a fetch consumed the
    // page, to waste if the prefetched copy was lost before use.
    if (served) {
      prefetchHits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      prefetchWasted_.fetch_add(1, std::memory_order_relaxed);
      if (tracer_ != nullptr) {
        tracer_->counter(trace::CounterKind::PrefetchWasted);
      }
    }
    c.issued = false;
  }
  if (--c.count <= 0) {
    if (c.pinned) s.core.unpin(key);
    s.claims.erase(it);
  }
  return credit;
}

std::uint64_t PageSpaceManager::takeFromSpare(std::uint64_t want) {
  std::uint64_t cur = spare_.load(std::memory_order_relaxed);
  while (cur > 0) {
    const std::uint64_t take = std::min(cur, want);
    if (spare_.compare_exchange_weak(cur, cur - take,
                                     std::memory_order_relaxed)) {
      return take;
    }
  }
  return 0;
}

std::uint64_t PageSpaceManager::borrowBudget(std::uint64_t want,
                                             const Shard& home) {
  std::uint64_t got = takeFromSpare(want);
  for (const auto& sp : shards_) {
    if (got >= want) break;
    Shard& t = *sp;
    if (&t == &home) continue;
    MutexLock lock(t.mu);
    const std::uint64_t cap = t.core.capacityBytes();
    std::uint64_t take = std::min(cap - t.core.residentBytes(), want - got);
    if (take < want - got) {
      // Global pressure: idle headroom alone is not enough, so evict from
      // this shard's unpinned LRU tail too — the sharded equivalent of the
      // single cache evicting its global tail.
      std::uint64_t freed = 0;
      for (const auto& victim : t.core.evictUpTo(want - got - take, &freed)) {
        t.resident.erase(victim);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::PsEvict);
      }
      take += freed;
    }
    t.core.setCapacity(cap - take);
    got += take;
  }
  return got;
}

void PageSpaceManager::finishInsertLocked(Shard& s,
                                          const storage::PageKey& key,
                                          const PagePtr& page, std::size_t n,
                                          bool viaPrefetch) {
  for (const auto& victim : s.core.insert(key, n)) {
    s.resident.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::PsEvict);
  }
  if (s.core.contains(key)) {
    s.resident[key] = page;
    // An outstanding claim pins the page so eviction pressure from other
    // queries cannot drop it before its claimant consumes it.
    if (auto it = s.claims.find(key);
        it != s.claims.end() && !it->second.pinned) {
      s.core.pin(key);
      it->second.pinned = true;
    }
  }
  if (viaPrefetch) {
    // Charge the device bytes to whichever query consumes the page.
    if (auto it = s.claims.find(key); it != s.claims.end()) {
      it->second.creditBytes = n;
    }
  }
  s.inflight.erase(key);
}

void PageSpaceManager::insertWithBudget(Shard& s, const storage::PageKey& key,
                                        const PagePtr& page, std::size_t n,
                                        bool viaPrefetch) {
  for (int attempt = 0; attempt < kMaxBorrowAttempts; ++attempt) {
    std::uint64_t deficit = 0;
    {
      MutexLock lock(s.mu);
      // The page fits once every unpinned resident is evicted iff pinned
      // bytes + n stay within the slice; insert() then cannot fail.
      const std::uint64_t cap = s.core.capacityBytes();
      const std::uint64_t floor = s.core.pinnedBytes();
      if (floor + n <= cap) {
        finishInsertLocked(s, key, page, n, viaPrefetch);
        return;
      }
      deficit = floor + n - cap;
    }
    // Slice too small: rebalance without holding the home shard (the
    // borrow locks other shards, and two kPageSpaceShard locks must never
    // nest). Budget in transit is invisible to both slices until the
    // setCapacity below lands.
    const std::uint64_t got = borrowBudget(deficit, s);
    if (got == 0) break;  // nothing reclaimable anywhere: cache what fits
    MutexLock lock(s.mu);
    s.core.setCapacity(s.core.capacityBytes() + got);
  }
  // Budget could not be grown enough (every other byte is pinned or in
  // use, or borrowed bytes kept being consumed by concurrent inserts).
  // Insert anyway — the core marks the page uncacheable — so the claim
  // and in-flight bookkeeping still settles.
  MutexLock lock(s.mu);
  finishInsertLocked(s, key, page, n, viaPrefetch);
}

void PageSpaceManager::performRead(const storage::PageKey& key,
                                   const storage::DataSource* source,
                                   std::promise<ReadResult>& promise,
                                   bool viaPrefetch) {
  Shard& s = shardFor(key);
  PagePtr page;
  try {
    const std::size_t n = source->pageBytes(key.page);
    auto buffer = std::make_shared<std::vector<std::byte>>(n);
    // Retry transient device faults with exponential backoff; anything else
    // (permanent faults, programming errors) propagates on first throw.
    for (int attempt = 1;; ++attempt) {
      try {
        source->readPage(key.page, *buffer);
        break;
      } catch (const storage::TransientReadError&) {
        if (attempt >= retry_.maxAttempts) throw;
        double backoff = retry_.backoffSec;
        for (int k = 1; k < attempt; ++k) backoff *= retry_.multiplier;
        if (backoff > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        }
        readRetries_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    page = std::move(buffer);
    bytesRead_.fetch_add(n, std::memory_order_relaxed);
    insertWithBudget(s, key, page, n, viaPrefetch);
  } catch (...) {
    readFailures_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(s.mu);
      s.inflight.erase(key);
    }
    // Flatten the failure to (kind, message): waiters rebuild their own
    // exception objects, so none is shared across threads.
    ReadResult r;
    try {
      throw;
    } catch (const storage::TransientReadError& e) {
      r.error = ReadResult::Error::Transient;
      r.message = e.what();
    } catch (const storage::PermanentReadError& e) {
      r.error = ReadResult::Error::Permanent;
      r.message = e.what();
    } catch (const std::exception& e) {
      r.error = ReadResult::Error::Other;
      r.message = e.what();
    } catch (...) {
      r.error = ReadResult::Error::Other;
      r.message = "unknown read error";
    }
    promise.set_value(std::move(r));
    return;
  }
  ReadResult ok;
  ok.page = std::move(page);
  promise.set_value(std::move(ok));
}

PagePtr PageSpaceManager::fetch(const storage::PageKey& key) {
  Shard& s = shardFor(key);
  std::shared_ptr<std::promise<ReadResult>> promise;
  std::shared_future<ReadResult> future;
  const storage::DataSource* source = nullptr;
  {
    MutexLock lock(s.mu);
    if (s.core.touch(key)) {
      auto it = s.resident.find(key);
      MQS_DCHECK(it != s.resident.end());
      tlsDeviceBytes += consumeClaimLocked(s, key, /*served=*/true);
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::PsHit);
      return it->second;
    }
    if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::PsMiss);
    auto inIt = s.inflight.find(key);
    if (inIt != s.inflight.end()) {
      // Another thread (query or I/O pool) is already reading this page:
      // merge onto the one device read.
      merged_.fetch_add(1, std::memory_order_relaxed);
      future = inIt->second;
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
      source = sourceFor(key.dataset);
      // A claim whose page is neither resident nor in flight is stale: the
      // prefetched copy was lost (uncacheable insert under pin pressure).
      // Settle one claim as wasted here, under the same lock, so claims
      // taken by prefetches racing with this read are left to their owners.
      (void)consumeClaimLocked(s, key, /*served=*/false);
      promise = std::make_shared<std::promise<ReadResult>>();
      future = promise->get_future().share();
      s.inflight.emplace(key, future);
    }
  }

  if (source != nullptr) {
    // Demand miss: read on the calling thread (no context switch). The
    // caller's claim (if any) was already settled above, so a failing read
    // keeps the always-consume-one-claim contract.
    const std::size_t n = source->pageBytes(key.page);
    {
      StallTimer stall(tracer_);
      performRead(key, source, *promise, /*viaPrefetch=*/false);
    }
    const ReadResult& r = future.get();
    if (r.error != ReadResult::Error::None) throwReadError(r);
    tlsDeviceBytes += n;
    return r.page;
  }

  ReadResult r;
  {
    StallTimer stall(tracer_);
    r = future.get();
  }
  if (r.error != ReadResult::Error::None) {
    // The merged read failed: settle the caller's claim as unserved so
    // the failure path consumes exactly one claim, like success does.
    {
      MutexLock lock(s.mu);
      (void)consumeClaimLocked(s, key, /*served=*/false);
    }
    throwReadError(r);
  }
  std::uint64_t credit = 0;
  {
    MutexLock lock(s.mu);
    credit = consumeClaimLocked(s, key, /*served=*/true);
  }
  tlsDeviceBytes += credit;
  return r.page;
}

void PageSpaceManager::prefetch(const storage::PageKey& key) {
  if (!io_) return;  // synchronous mode: readahead hints are ignored
  Shard& s = shardFor(key);
  std::shared_ptr<std::promise<ReadResult>> promise;
  const storage::DataSource* source = nullptr;
  {
    MutexLock lock(s.mu);
    Claim& c = s.claims[key];
    ++c.count;
    // contains() instead of touch(): a hint must not distort hit/miss
    // stats, and the pin below protects the page regardless of LRU order.
    if (s.core.contains(key)) {
      if (!c.pinned) {
        s.core.pin(key);
        c.pinned = true;
      }
      return;
    }
    if (s.inflight.contains(key)) {
      return;  // coalesce: the claim is pinned when the read lands
    }
    source = sourceFor(key.dataset);
    promise = std::make_shared<std::promise<ReadResult>>();
    s.inflight.emplace(key, promise->get_future().share());
    prefetchIssued_.fetch_add(1, std::memory_order_relaxed);
    if (tracer_ != nullptr) {
      tracer_->counter(trace::CounterKind::PrefetchIssued);
    }
    c.issued = true;
  }
  const bool queued = io_->submit([this, key, source, promise] {
    performRead(key, source, *promise, /*viaPrefetch=*/true);
  });
  if (!queued) {
    // Pool is shutting down: fail the read so no waiter hangs.
    {
      MutexLock lock(s.mu);
      s.inflight.erase(key);
    }
    promise->set_value(ReadResult{.page = nullptr,
                                  .error = ReadResult::Error::Other,
                                  .message =
                                      "page space manager is shutting down"});
  }
}

void PageSpaceManager::releaseClaim(const storage::PageKey& key) {
  Shard& s = shardFor(key);
  MutexLock lock(s.mu);
  auto it = s.claims.find(key);
  if (it == s.claims.end()) return;
  Claim& c = it->second;
  if (--c.count <= 0) {
    if (c.issued) {
      // Issued read never consumed.
      prefetchWasted_.fetch_add(1, std::memory_order_relaxed);
      if (tracer_ != nullptr) {
        tracer_->counter(trace::CounterKind::PrefetchWasted);
      }
    }
    if (c.pinned) s.core.unpin(key);
    s.claims.erase(it);
  }
}

std::vector<PagePtr> PageSpaceManager::fetchBatch(
    std::span<const storage::PageKey> keys) {
  for (const auto& key : keys) prefetch(key);
  std::vector<PagePtr> out;
  out.reserve(keys.size());
  std::size_t done = 0;
  try {
    for (; done < keys.size(); ++done) {
      out.push_back(fetch(keys[done]));
    }
  } catch (...) {
    // The failing fetch consumed its own claim (fetch's failure contract),
    // as did every fetch before it; release only the claims taken for keys
    // the batch never reached. Releasing the failing key here as well would
    // over-release: with no batch claim left it would steal — and unpin —
    // a claim held by a concurrent query on the same page.
    for (std::size_t j = done + 1; j < keys.size(); ++j) {
      releaseClaim(keys[j]);
    }
    throw;
  }
  return out;
}

PageSpaceManager::Stats PageSpaceManager::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.merged = merged_.load(std::memory_order_relaxed);
  s.bytesRead = bytesRead_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.prefetchIssued = prefetchIssued_.load(std::memory_order_relaxed);
  s.prefetchHits = prefetchHits_.load(std::memory_order_relaxed);
  s.prefetchWasted = prefetchWasted_.load(std::memory_order_relaxed);
  s.readRetries = readRetries_.load(std::memory_order_relaxed);
  s.readFailures = readFailures_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t PageSpaceManager::residentBytes() const {
  std::uint64_t total = 0;
  for (const auto& sp : shards_) {
    MutexLock lock(sp->mu);
    total += sp->core.residentBytes();
  }
  return total;
}

std::uint64_t PageSpaceManager::budgetAccountedBytes() const {
  std::uint64_t total = spare_.load(std::memory_order_relaxed);
  for (const auto& sp : shards_) {
    MutexLock lock(sp->mu);
    total += sp->core.capacityBytes();
  }
  return total;
}

std::size_t PageSpaceManager::inflightCount() const {
  std::size_t total = 0;
  for (const auto& sp : shards_) {
    MutexLock lock(sp->mu);
    total += sp->inflight.size();
  }
  return total;
}

std::size_t PageSpaceManager::claimCount() const {
  std::size_t total = 0;
  for (const auto& sp : shards_) {
    MutexLock lock(sp->mu);
    total += sp->claims.size();
  }
  return total;
}

}  // namespace mqs::pagespace
