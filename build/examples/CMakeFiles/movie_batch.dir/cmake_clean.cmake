file(REMOVE_RECURSE
  "CMakeFiles/movie_batch.dir/movie_batch.cpp.o"
  "CMakeFiles/movie_batch.dir/movie_batch.cpp.o.d"
  "movie_batch"
  "movie_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
